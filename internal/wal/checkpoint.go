package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
)

// Checkpoint file layout (all integers little-endian):
//
//	"ANKCKPT3"                    8-byte magic
//	ts u64                        checkpoint timestamp (snapshot
//	                              generation timestamp)
//	ntables u32
//	per table:
//	  slot u32, name (u32 len + bytes), rows u64, ncols u32
//	  (slot is the table's schema-log position — the stable index
//	  recovery addresses tables by. Names alone are ambiguous once
//	  DropTable exists: a checkpoint written before a drop can
//	  coexist with a re-created table of the same name, and its
//	  section must load into the dropped incarnation's slot, not the
//	  new one's.)
//	  per column: rows raw u64 data words, rows raw u64 wts words
//	  rows raw u64 birth words, rows raw u64 death words (the
//	  visibility arrays of growable tables; rows is the table's
//	  captured capacity, which may exceed its created size)
//	  dict: u32 count, then count strings (u32 len + bytes)
//	crc u32                       CRC32 of everything above
//	"ANKCKPTE"                    8-byte trailer magic
//
// The dictionary comes AFTER the column words on purpose: the dict is
// append-only and codes are assigned when a write is staged, so a
// dictionary read after every column capture is a superset of the
// codes any captured word can hold — a VARCHAR commit racing the
// checkpoint can never leave a dangling code in the checkpointed
// columns.
//
// The file is written to a temporary name and atomically renamed, so a
// crash mid-checkpoint leaves the previous checkpoint authoritative;
// the trailer plus whole-file CRC reject any file that somehow ends up
// incomplete.

var (
	ckptMagic   = []byte("ANKCKPT3")
	ckptTrailer = []byte("ANKCKPTE")
)

const ckptTrailerLen = 4 + 8 // crc u32 + trailer magic

// CheckpointWriter streams a checkpoint's body. It implements
// io.Writer (all writes feed the running CRC), with helpers for the
// metadata fields; column words are streamed through the storage
// layer's serialization directly into it.
type CheckpointWriter struct {
	bw  *bufio.Writer
	crc hash.Hash32
	err error
}

// Write implements io.Writer.
func (w *CheckpointWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.bw.Write(p)
	w.crc.Write(p[:n])
	w.err = err
	return n, err
}

func (w *CheckpointWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, _ = w.Write(b[:])
}

func (w *CheckpointWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, _ = w.Write(b[:])
}

func (w *CheckpointWriter) str(s string) {
	w.u32(uint32(len(s)))
	_, _ = w.Write([]byte(s))
}

// BeginTable writes one table's header (identity and geometry): slot
// is the table's schema-log position, the index recovery resolves the
// section by. The caller must follow with exactly cols (data, wts)
// column-word streams of rows words each, then FinishTable.
func (w *CheckpointWriter) BeginTable(slot int, name string, rows, cols int) error {
	w.u32(uint32(slot))
	w.str(name)
	w.u64(uint64(rows))
	w.u32(uint32(cols))
	return w.err
}

// FinishTable writes the table's dictionary, closing its section. The
// dictionary must be read AFTER the last column capture (see the
// layout comment: post-capture dictionaries are supersets of every
// captured code).
func (w *CheckpointWriter) FinishTable(dict []string) error {
	w.u32(uint32(len(dict)))
	for _, s := range dict {
		w.str(s)
	}
	return w.err
}

// WriteCheckpoint atomically writes a checkpoint at ts: stream is
// called to write ntables table sections, then the file is CRC-sealed,
// fsynced and renamed into place. On success older checkpoints are
// removed and the WAL is truncated below ts — records above ts stay,
// which is exactly what replay needs on top of this checkpoint.
func (l *Log) WriteCheckpoint(ts uint64, ntables int, stream func(w *CheckpointWriter) error) error {
	if err := l.usable(); err != nil {
		// A poisoned log may hold in-memory state whose Commit already
		// returned an error; checkpointing it would make a failed
		// commit durable and truncate the WAL on top of a hole.
		return err
	}
	tmp := l.tmpCheckpointPath()
	f, err := l.fs.Create(tmp)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		_ = f.Close()
		_ = l.fs.Remove(tmp)
		return err
	}
	w := &CheckpointWriter{bw: bufio.NewWriterSize(f, 1<<16), crc: crc32.NewIEEE()}
	_, _ = w.Write(ckptMagic)
	w.u64(ts)
	w.u32(uint32(ntables))
	if w.err != nil {
		return abort(w.err)
	}
	if err := stream(w); err != nil {
		return abort(err)
	}
	if w.err != nil {
		return abort(w.err)
	}
	// Seal: CRC of everything written so far, then the trailer magic.
	w.u32(w.crc.Sum32())
	_, _ = w.Write(ckptTrailer)
	if w.err != nil {
		return abort(w.err)
	}
	if err := w.bw.Flush(); err != nil {
		return abort(err)
	}
	if err := l.sync(f); err != nil {
		return abort(err)
	}
	if err := f.Close(); err != nil {
		return abort(err)
	}
	final := filepath.Join(l.dir, checkpointName(ts))
	if err := l.fs.Rename(tmp, final); err != nil {
		_ = l.fs.Remove(tmp)
		return err
	}
	if err := l.syncDir(l.dir); err != nil {
		return err
	}
	// The new checkpoint is durable: older ones are now dead weight.
	ckpts, err := l.checkpoints()
	if err != nil {
		return err
	}
	for _, c := range ckpts {
		if c.path != final {
			_ = l.fs.Remove(c.path)
		}
	}
	return l.TruncateBelow(ts)
}

// CheckpointReader streams a validated checkpoint body in O(buffer)
// memory: reads pull through a bufio window, feed the incremental CRC,
// and are bounded by the body length, so the trailer is never consumed
// as data. It implements io.Reader for the raw column-word streams,
// with helpers mirroring the writer's metadata fields. Integrity is
// verified after the body has been consumed (LoadCheckpoint compares
// the incremental CRC against the sealed one) — recovery applies data
// before the verdict, which is safe because a mismatch fails the whole
// Open and the partially filled state is discarded.
type CheckpointReader struct {
	br        *bufio.Reader
	crc       hash.Hash32
	remaining int64 // body bytes not yet consumed (trailer excluded)
}

// Read implements io.Reader.
func (r *CheckpointReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, fmt.Errorf("wal: checkpoint exhausted")
	}
	if int64(len(p)) > r.remaining {
		p = p[:r.remaining]
	}
	n, err := r.br.Read(p)
	r.crc.Write(p[:n])
	r.remaining -= int64(n)
	if err != nil && n > 0 {
		err = nil // deliver the bytes; the next call reports the error
	}
	if err != nil {
		return n, fmt.Errorf("wal: checkpoint truncated: %w", err)
	}
	return n, nil
}

// take consumes exactly n body bytes into a small scratch slice valid
// until the next read.
func (r *CheckpointReader) take(n int) ([]byte, error) {
	if int64(n) > r.remaining {
		return nil, fmt.Errorf("wal: checkpoint truncated")
	}
	b, err := r.br.Peek(n)
	if err != nil {
		return nil, fmt.Errorf("wal: checkpoint truncated: %w", err)
	}
	r.crc.Write(b)
	if _, err := r.br.Discard(n); err != nil {
		return nil, err
	}
	r.remaining -= int64(n)
	return b, nil
}

func (r *CheckpointReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *CheckpointReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *CheckpointReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if int64(n) > r.remaining {
		return "", fmt.Errorf("wal: checkpoint truncated")
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// TableHeader reads the next table section header written by
// BeginTable. The caller must follow with exactly cols (data, wts)
// column-word streams of rows words each, then TableDict.
func (r *CheckpointReader) TableHeader() (slot int, name string, rows, cols int, err error) {
	var s32 uint32
	if s32, err = r.u32(); err != nil {
		return
	}
	slot = int(s32)
	if name, err = r.str(); err != nil {
		return
	}
	var r64 uint64
	if r64, err = r.u64(); err != nil {
		return
	}
	rows = int(r64)
	var c32 uint32
	if c32, err = r.u32(); err != nil {
		return
	}
	cols = int(c32)
	return
}

// TableDict reads the table's trailing dictionary written by
// FinishTable.
func (r *CheckpointReader) TableDict() ([]string, error) {
	d32, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int64(d32) > r.remaining {
		return nil, fmt.Errorf("wal: checkpoint dictionary claims %d strings in %d bytes", d32, r.remaining)
	}
	var dict []string
	for i := 0; i < int(d32); i++ {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		dict = append(dict, s)
	}
	return dict, nil
}

// LoadCheckpoint locates the newest checkpoint, validates its framing,
// and streams its body to load in O(buffer) memory: the trailer magic
// and sealed CRC are read from the file's tail first, then the body is
// pulled chunk-wise through the reader while an incremental CRC runs
// over it, and the sums are compared once the body is drained. ok is
// false when the directory holds no checkpoint (a valid state: recovery
// then replays the WAL from scratch). A present-but-corrupt checkpoint
// is an error, not a fallback — the WAL below its timestamp is already
// truncated, so silently ignoring it would lose data.
func (l *Log) LoadCheckpoint(load func(ts uint64, ntables int, r *CheckpointReader) error) (ts uint64, ok bool, err error) {
	ckpts, err := l.checkpoints()
	if err != nil || len(ckpts) == 0 {
		return 0, false, err
	}
	newest := ckpts[len(ckpts)-1]
	f, err := l.fs.Open(newest.path)
	if err != nil {
		return 0, false, err
	}
	defer func() { _ = f.Close() }()
	fi, err := f.Stat()
	if err != nil {
		return 0, false, err
	}
	minLen := int64(len(ckptMagic) + 8 + 4 + ckptTrailerLen)
	if fi.Size() < minLen {
		return 0, false, corruptCkpt(newest.path, 0, "bad header (%d bytes, want at least %d)", fi.Size(), minLen)
	}
	// Seal first: a file without the trailer magic was never completely
	// written and must not be streamed into the tables at all.
	var tail [ckptTrailerLen]byte
	if _, err := f.ReadAt(tail[:], fi.Size()-ckptTrailerLen); err != nil {
		return 0, false, err
	}
	if string(tail[4:]) != string(ckptTrailer) {
		return 0, false, corruptCkpt(newest.path, fi.Size()-ckptTrailerLen, "missing trailer")
	}
	wantCRC := binary.LittleEndian.Uint32(tail[:4])

	r := &CheckpointReader{
		br:        bufio.NewReaderSize(f, replayBufSize),
		crc:       crc32.NewIEEE(),
		remaining: fi.Size() - ckptTrailerLen,
	}
	l.notePeak(replayBufSize)
	magic, err := r.take(len(ckptMagic))
	if err != nil || string(magic) != string(ckptMagic) {
		return 0, false, corruptCkpt(newest.path, 0, "bad header")
	}
	ts, err = r.u64()
	if err != nil {
		return 0, false, err
	}
	n32, err := r.u32()
	if err != nil {
		return 0, false, err
	}
	if err := load(ts, int(n32), r); err != nil {
		return 0, false, corruptCkpt(newest.path, fi.Size()-ckptTrailerLen-r.remaining, "%v", err)
	}
	// Drain whatever the loader did not consume so the CRC covers the
	// whole body, then compare against the sealed sum.
	if _, err := io.Copy(io.Discard, r); err != nil && r.remaining > 0 {
		return 0, false, corruptCkpt(newest.path, fi.Size()-ckptTrailerLen-r.remaining, "%v", err)
	}
	if r.crc.Sum32() != wantCRC {
		return 0, false, corruptCkpt(newest.path, fi.Size()-ckptTrailerLen, "checksum mismatch")
	}
	return ts, true, nil
}

func (l *Log) tmpCheckpointPath() string {
	return filepath.Join(l.dir, "checkpoint.tmp")
}

func checkpointName(ts uint64) string {
	return fmt.Sprintf("checkpoint-%020d.ckpt", ts)
}

type ckptref struct {
	path string
	ts   uint64
}

// checkpoints lists checkpoint files sorted by timestamp.
func (l *Log) checkpoints() ([]ckptref, error) {
	ents, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var out []ckptref
	for _, e := range ents {
		var ts uint64
		if n, _ := fmt.Sscanf(e.Name(), "checkpoint-%020d.ckpt", &ts); n != 1 {
			continue
		}
		out = append(out, ckptref{path: filepath.Join(l.dir, e.Name()), ts: ts})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ts < out[j].ts })
	return out, nil
}
