package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Checkpoint file layout (all integers little-endian):
//
//	"ANKCKPT1"                    8-byte magic
//	ts u64                        checkpoint timestamp (snapshot
//	                              generation timestamp)
//	ntables u32
//	per table:
//	  name (u32 len + bytes), rows u64, ncols u32
//	  per column: rows raw u64 data words, rows raw u64 wts words
//	  dict: u32 count, then count strings (u32 len + bytes)
//	crc u32                       CRC32 of everything above
//	"ANKCKPTE"                    8-byte trailer magic
//
// The dictionary comes AFTER the column words on purpose: the dict is
// append-only and codes are assigned when a write is staged, so a
// dictionary read after every column capture is a superset of the
// codes any captured word can hold — a VARCHAR commit racing the
// checkpoint can never leave a dangling code in the checkpointed
// columns.
//
// The file is written to a temporary name and atomically renamed, so a
// crash mid-checkpoint leaves the previous checkpoint authoritative;
// the trailer plus whole-file CRC reject any file that somehow ends up
// incomplete.

var (
	ckptMagic   = []byte("ANKCKPT1")
	ckptTrailer = []byte("ANKCKPTE")
)

const ckptTrailerLen = 4 + 8 // crc u32 + trailer magic

// CheckpointWriter streams a checkpoint's body. It implements
// io.Writer (all writes feed the running CRC), with helpers for the
// metadata fields; column words are streamed through the storage
// layer's serialization directly into it.
type CheckpointWriter struct {
	bw  *bufio.Writer
	crc hash.Hash32
	err error
}

// Write implements io.Writer.
func (w *CheckpointWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.bw.Write(p)
	w.crc.Write(p[:n])
	w.err = err
	return n, err
}

func (w *CheckpointWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, _ = w.Write(b[:])
}

func (w *CheckpointWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, _ = w.Write(b[:])
}

func (w *CheckpointWriter) str(s string) {
	w.u32(uint32(len(s)))
	_, _ = w.Write([]byte(s))
}

// BeginTable writes one table's header (identity and geometry). The
// caller must follow with exactly cols (data, wts) column-word streams
// of rows words each, then FinishTable.
func (w *CheckpointWriter) BeginTable(name string, rows, cols int) error {
	w.str(name)
	w.u64(uint64(rows))
	w.u32(uint32(cols))
	return w.err
}

// FinishTable writes the table's dictionary, closing its section. The
// dictionary must be read AFTER the last column capture (see the
// layout comment: post-capture dictionaries are supersets of every
// captured code).
func (w *CheckpointWriter) FinishTable(dict []string) error {
	w.u32(uint32(len(dict)))
	for _, s := range dict {
		w.str(s)
	}
	return w.err
}

// WriteCheckpoint atomically writes a checkpoint at ts: stream is
// called to write ntables table sections, then the file is CRC-sealed,
// fsynced and renamed into place. On success older checkpoints are
// removed and the WAL is truncated below ts — records above ts stay,
// which is exactly what replay needs on top of this checkpoint.
func (l *Log) WriteCheckpoint(ts uint64, ntables int, stream func(w *CheckpointWriter) error) error {
	if err := l.usable(); err != nil {
		// A poisoned log may hold in-memory state whose Commit already
		// returned an error; checkpointing it would make a failed
		// commit durable and truncate the WAL on top of a hole.
		return err
	}
	tmp := l.tmpCheckpointPath()
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	w := &CheckpointWriter{bw: bufio.NewWriterSize(f, 1<<16), crc: crc32.NewIEEE()}
	_, _ = w.Write(ckptMagic)
	w.u64(ts)
	w.u32(uint32(ntables))
	if w.err != nil {
		return abort(w.err)
	}
	if err := stream(w); err != nil {
		return abort(err)
	}
	if w.err != nil {
		return abort(w.err)
	}
	// Seal: CRC of everything written so far, then the trailer magic.
	w.u32(w.crc.Sum32())
	_, _ = w.Write(ckptTrailer)
	if w.err != nil {
		return abort(w.err)
	}
	if err := w.bw.Flush(); err != nil {
		return abort(err)
	}
	if err := l.sync(f); err != nil {
		return abort(err)
	}
	if err := f.Close(); err != nil {
		return abort(err)
	}
	final := filepath.Join(l.dir, checkpointName(ts))
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := l.syncDir(l.dir); err != nil {
		return err
	}
	// The new checkpoint is durable: older ones are now dead weight.
	ckpts, err := l.checkpoints()
	if err != nil {
		return err
	}
	for _, c := range ckpts {
		if c.path != final {
			_ = os.Remove(c.path)
		}
	}
	return l.TruncateBelow(ts)
}

// CheckpointReader consumes a validated checkpoint body. It implements
// io.Reader for the raw column-word streams, with helpers mirroring
// the writer's metadata fields.
type CheckpointReader struct {
	buf []byte
	off int
}

// Read implements io.Reader.
func (r *CheckpointReader) Read(p []byte) (int, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("wal: checkpoint exhausted")
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}

func (r *CheckpointReader) u32() (uint32, error) {
	if len(r.buf)-r.off < 4 {
		return 0, fmt.Errorf("wal: checkpoint truncated")
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *CheckpointReader) u64() (uint64, error) {
	if len(r.buf)-r.off < 8 {
		return 0, fmt.Errorf("wal: checkpoint truncated")
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *CheckpointReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if uint64(len(r.buf)-r.off) < uint64(n) {
		return "", fmt.Errorf("wal: checkpoint truncated")
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// TableHeader reads the next table section header written by
// BeginTable. The caller must follow with exactly cols (data, wts)
// column-word streams of rows words each, then TableDict.
func (r *CheckpointReader) TableHeader() (name string, rows, cols int, err error) {
	if name, err = r.str(); err != nil {
		return
	}
	var r64 uint64
	if r64, err = r.u64(); err != nil {
		return
	}
	rows = int(r64)
	var c32 uint32
	if c32, err = r.u32(); err != nil {
		return
	}
	cols = int(c32)
	return
}

// TableDict reads the table's trailing dictionary written by
// FinishTable.
func (r *CheckpointReader) TableDict() ([]string, error) {
	d32, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(d32) > uint64(len(r.buf)-r.off) {
		return nil, fmt.Errorf("wal: checkpoint dictionary claims %d strings in %d bytes", d32, len(r.buf)-r.off)
	}
	var dict []string
	for i := 0; i < int(d32); i++ {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		dict = append(dict, s)
	}
	return dict, nil
}

// LoadCheckpoint locates the newest checkpoint, validates its framing
// and whole-file CRC, and hands its body to load. ok is false when the
// directory holds no checkpoint (a valid state: recovery then replays
// the WAL from scratch). A present-but-corrupt checkpoint is an error,
// not a fallback — the WAL below its timestamp is already truncated,
// so silently ignoring it would lose data.
func (l *Log) LoadCheckpoint(load func(ts uint64, ntables int, r *CheckpointReader) error) (ts uint64, ok bool, err error) {
	ckpts, err := l.checkpoints()
	if err != nil || len(ckpts) == 0 {
		return 0, false, err
	}
	newest := ckpts[len(ckpts)-1]
	buf, err := os.ReadFile(newest.path)
	if err != nil {
		return 0, false, err
	}
	minLen := len(ckptMagic) + 8 + 4 + ckptTrailerLen
	if len(buf) < minLen || string(buf[:len(ckptMagic)]) != string(ckptMagic) {
		return 0, false, fmt.Errorf("wal: checkpoint %s: bad header", newest.path)
	}
	if string(buf[len(buf)-len(ckptTrailer):]) != string(ckptTrailer) {
		return 0, false, fmt.Errorf("wal: checkpoint %s: missing trailer", newest.path)
	}
	body := buf[: len(buf)-ckptTrailerLen : len(buf)-ckptTrailerLen]
	crc := binary.LittleEndian.Uint32(buf[len(buf)-ckptTrailerLen:])
	if crc32.ChecksumIEEE(body) != crc {
		return 0, false, fmt.Errorf("wal: checkpoint %s: checksum mismatch", newest.path)
	}
	r := &CheckpointReader{buf: body, off: len(ckptMagic)}
	ts, err = r.u64()
	if err != nil {
		return 0, false, err
	}
	n32, err := r.u32()
	if err != nil {
		return 0, false, err
	}
	if err := load(ts, int(n32), r); err != nil {
		return 0, false, fmt.Errorf("wal: checkpoint %s: %w", newest.path, err)
	}
	return ts, true, nil
}

func (l *Log) tmpCheckpointPath() string {
	return filepath.Join(l.dir, "checkpoint.tmp")
}

func checkpointName(ts uint64) string {
	return fmt.Sprintf("checkpoint-%020d.ckpt", ts)
}

type ckptref struct {
	path string
	ts   uint64
}

// checkpoints lists checkpoint files sorted by timestamp.
func (l *Log) checkpoints() ([]ckptref, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var out []ckptref
	for _, e := range ents {
		var ts uint64
		if n, _ := fmt.Sscanf(e.Name(), "checkpoint-%020d.ckpt", &ts); n != 1 {
			continue
		}
		out = append(out, ckptref{path: filepath.Join(l.dir, e.Name()), ts: ts})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ts < out[j].ts })
	return out, nil
}
