package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// RedoWrite is one durable write of a committed transaction: enough to
// re-apply the write during recovery. VARCHAR writes additionally carry
// the decoded string (HasStr), because dictionary codes are only
// meaningful relative to the dictionary state the checkpoint preserved;
// replay re-encodes the string through the recovered dictionary.
type RedoWrite struct {
	Table  int
	Col    int
	Row    int
	Val    int64
	Str    string
	HasStr bool
}

// RowOp is one durable row birth or death: an insert (Del false)
// stamps the row's birth timestamp with the record's commit timestamp
// at replay, a delete (Del true) its death timestamp.
type RowOp struct {
	Table int
	Row   int
	Del   bool
}

// CommitRecord is the redo record of one committed transaction: its
// commit timestamp, every write it materialised and every row it
// birthed or killed (Ops, present only in row-op records — kind 3).
// Replay is idempotent by commit timestamp: a write is re-applied only
// when its record's timestamp is newer than the row's current write
// timestamp, and recovery buffers row ops and applies them in
// timestamp order per row — so records may be replayed in any order
// and any number of times.
type CommitRecord struct {
	TS     uint64
	Writes []RedoWrite
	Ops    []RowOp
}

// WAL-segment record kinds: the first payload byte of every framed
// record in a shard segment. The schema log holds only table records
// and carries no kind byte. Kind 3 (ANKWSEG3) extends commit records
// with row ops; commits without row ops keep the kind-1 form.
const (
	recKindCommit    uint8 = 1
	recKindLoad      uint8 = 2
	recKindRowCommit uint8 = 3
)

// LoadRecord is one chunk of a durable bulk load (DB.Load/LoadStrings):
// a contiguous window of values for one column, written outside any
// transaction. Loads carry no timestamp — they are the state at time
// zero — so replay applies a loaded value only to rows whose write
// timestamp is still zero: any committed write (always stamped > 0)
// wins over a load regardless of replay order, and re-replaying a load
// over checkpoint-recovered rows is a no-op or rewrites the same
// values. VARCHAR chunks carry the decoded strings (HasStrs), re-encoded
// through the recovered dictionary at replay, exactly like commit
// records.
type LoadRecord struct {
	Table   int
	Col     int
	Start   int // first row of the chunk
	Vals    []int64
	Strs    []string
	HasStrs bool
}

// ColumnDef mirrors the storage schema column declaration in a form
// the wal package can persist without importing the storage package.
// Index is the declared secondary-index kind (0 = none); it rides the
// table record as a trailing extension, so logs written before index
// support decode with Index 0 everywhere.
type ColumnDef struct {
	Name  string
	Type  uint8
	Index uint8
}

// TableRecord is one schema-log entry: a table created during the
// log's lifetime. The schema log is append-only and never truncated
// (tables cannot be dropped), so replaying it in full recreates every
// table in original index order before checkpoint and WAL data are
// loaded into them.
type TableRecord struct {
	Name    string
	Rows    int
	Columns []ColumnDef
}

// maxFrameLen bounds a frame payload; larger lengths mark corruption.
const maxFrameLen = 1 << 30

// appendFrame appends payload to dst framed as
// [len u32][crc32(payload) u32][payload]. The length-before-content
// framing plus the checksum is what makes replay torn-tail tolerant: a
// crash mid-append leaves a frame that fails the length or CRC check
// and replay stops cleanly at the previous record.
func appendFrame(dst, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	return append(append(dst, hdr[:]...), payload...)
}

// encoder builds little-endian record payloads.
type encoder struct{ b []byte }

func (e *encoder) u8(v uint8) { e.b = append(e.b, v) }
func (e *encoder) u32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}
func (e *encoder) u64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// decoder consumes little-endian record payloads, latching the first
// bounds error instead of panicking on truncated input.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("wal: truncated record payload")
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil || uint64(len(d.b)) < uint64(n) {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// encode serialises the commit record payload (framing is the
// caller's). Records with row ops take the kind-3 layout — timestamp,
// ops, writes — so one frame carries the whole transaction and a torn
// tail can never split a commit's ops from its writes.
func (r CommitRecord) encode(dst []byte) []byte {
	e := encoder{b: dst}
	if len(r.Ops) > 0 {
		e.u8(recKindRowCommit)
		e.u64(r.TS)
		e.u32(uint32(len(r.Ops)))
		for _, op := range r.Ops {
			e.u32(uint32(op.Table))
			e.u32(uint32(op.Row))
			if op.Del {
				e.u8(1)
			} else {
				e.u8(0)
			}
		}
	} else {
		e.u8(recKindCommit)
		e.u64(r.TS)
	}
	e.u32(uint32(len(r.Writes)))
	for _, w := range r.Writes {
		e.u32(uint32(w.Table))
		e.u32(uint32(w.Col))
		e.u32(uint32(w.Row))
		e.u64(uint64(w.Val))
		if w.HasStr {
			e.u8(1)
			e.str(w.Str)
		} else {
			e.u8(0)
		}
	}
	return e.b
}

func decodeCommit(payload []byte) (CommitRecord, error) {
	d := decoder{b: payload}
	kind := d.u8()
	if d.err == nil && kind != recKindCommit && kind != recKindRowCommit {
		return CommitRecord{}, fmt.Errorf("wal: record kind %d, want commit (%d or %d)", kind, recKindCommit, recKindRowCommit)
	}
	rec := CommitRecord{TS: d.u64()}
	if kind == recKindRowCommit {
		nops := d.u32()
		if d.err == nil && uint64(nops) > uint64(len(payload)) {
			return rec, fmt.Errorf("wal: commit record claims %d row ops in %d bytes", nops, len(payload))
		}
		for i := 0; i < int(nops); i++ {
			op := RowOp{Table: int(d.u32()), Row: int(d.u32())}
			op.Del = d.u8() != 0
			rec.Ops = append(rec.Ops, op)
		}
	}
	n := d.u32()
	if d.err == nil && uint64(n) > uint64(len(payload)) {
		// A write takes at least one payload byte; more writes than
		// bytes is corruption, not a huge record.
		return rec, fmt.Errorf("wal: commit record claims %d writes in %d bytes", n, len(payload))
	}
	for i := 0; i < int(n); i++ {
		w := RedoWrite{
			Table: int(d.u32()),
			Col:   int(d.u32()),
			Row:   int(d.u32()),
			Val:   int64(d.u64()),
		}
		if d.u8() != 0 {
			w.Str, w.HasStr = d.str(), true
		}
		rec.Writes = append(rec.Writes, w)
	}
	return rec, d.err
}

// encode serialises the load record payload.
func (r LoadRecord) encode(dst []byte) []byte {
	e := encoder{b: dst}
	e.u8(recKindLoad)
	e.u32(uint32(r.Table))
	e.u32(uint32(r.Col))
	e.u32(uint32(r.Start))
	if r.HasStrs {
		e.u8(1)
		e.u32(uint32(len(r.Strs)))
		for _, s := range r.Strs {
			e.str(s)
		}
	} else {
		e.u8(0)
		e.u32(uint32(len(r.Vals)))
		for _, v := range r.Vals {
			e.u64(uint64(v))
		}
	}
	return e.b
}

func decodeLoad(payload []byte) (LoadRecord, error) {
	d := decoder{b: payload}
	if kind := d.u8(); d.err == nil && kind != recKindLoad {
		return LoadRecord{}, fmt.Errorf("wal: record kind %d, want load (%d)", kind, recKindLoad)
	}
	rec := LoadRecord{
		Table: int(d.u32()),
		Col:   int(d.u32()),
		Start: int(d.u32()),
	}
	rec.HasStrs = d.u8() != 0
	n := d.u32()
	if d.err == nil && uint64(n) > uint64(len(payload)) {
		// A value takes at least one payload byte; more values than
		// bytes is corruption, not a huge chunk.
		return rec, fmt.Errorf("wal: load record claims %d values in %d bytes", n, len(payload))
	}
	if rec.HasStrs {
		for i := 0; i < int(n); i++ {
			rec.Strs = append(rec.Strs, d.str())
		}
	} else {
		for i := 0; i < int(n); i++ {
			rec.Vals = append(rec.Vals, int64(d.u64()))
		}
	}
	return rec, d.err
}

// encode serialises the table record payload. The per-column index
// kinds trail the original layout so that pre-index schema logs stay
// decodable: a decoder that runs out of payload after the columns
// simply leaves every Index at 0.
func (r TableRecord) encode(dst []byte) []byte {
	e := encoder{b: dst}
	e.str(r.Name)
	e.u64(uint64(r.Rows))
	e.u32(uint32(len(r.Columns)))
	for _, c := range r.Columns {
		e.str(c.Name)
		e.u8(c.Type)
	}
	for _, c := range r.Columns {
		e.u8(c.Index)
	}
	return e.b
}

func decodeTable(payload []byte) (TableRecord, error) {
	d := decoder{b: payload}
	rec := TableRecord{Name: d.str(), Rows: int(d.u64())}
	n := d.u32()
	if d.err == nil && uint64(n) > uint64(len(payload)) {
		return rec, fmt.Errorf("wal: table record claims %d columns in %d bytes", n, len(payload))
	}
	for i := 0; i < int(n); i++ {
		rec.Columns = append(rec.Columns, ColumnDef{Name: d.str(), Type: d.u8()})
	}
	if d.err == nil && len(d.b) >= len(rec.Columns) {
		// Trailing index-kind extension (absent in pre-index logs).
		for i := range rec.Columns {
			rec.Columns[i].Index = d.u8()
		}
	}
	return rec, d.err
}

// indexDDLMarker distinguishes index-DDL records from table records in
// the shared schema log: a table record's payload begins with the u32
// length of the table name, which can never be 0xFFFFFFFF.
const indexDDLMarker uint32 = 0xFFFFFFFF

// IndexDDLRecord is one online CreateIndex (Drop false) or DropIndex
// (Drop true) appended to the schema log. Like table records these are
// never truncated: replaying the full schema log in order yields the
// set of indexes alive at crash time, whose *contents* recovery then
// rebuilds from the recovered column and visibility arrays (index
// entries themselves are deliberately not logged — see the trade
// documented in the root package's index_db.go).
type IndexDDLRecord struct {
	Table  string
	Column string
	Kind   uint8
	Drop   bool
}

func (r IndexDDLRecord) encode(dst []byte) []byte {
	e := encoder{b: dst}
	e.u32(indexDDLMarker)
	if r.Drop {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.str(r.Table)
	e.str(r.Column)
	e.u8(r.Kind)
	return e.b
}

func decodeIndexDDL(payload []byte) (IndexDDLRecord, error) {
	d := decoder{b: payload}
	if m := d.u32(); d.err == nil && m != indexDDLMarker {
		return IndexDDLRecord{}, fmt.Errorf("wal: index-DDL marker %#x, want %#x", m, indexDDLMarker)
	}
	rec := IndexDDLRecord{Drop: d.u8() != 0}
	rec.Table = d.str()
	rec.Column = d.str()
	rec.Kind = d.u8()
	return rec, d.err
}

// isIndexDDL reports whether a schema-log payload is an index-DDL
// record (as opposed to a table record).
func isIndexDDL(payload []byte) bool {
	return len(payload) >= 4 && binary.LittleEndian.Uint32(payload) == indexDDLMarker
}

// tableDDLMarker distinguishes DropTable/Truncate records in the
// shared schema log; like the index-DDL marker it is impossible as a
// table-name length, so pre-DDL readers fail loudly instead of
// misparsing.
const tableDDLMarker uint32 = 0xFFFFFFFE

// Table-DDL operations.
const (
	// TableDDLDrop removes the table: its WAL records are skipped at
	// replay and its name becomes free for re-creation.
	TableDDLDrop uint8 = 1
	// TableDDLTruncate empties the table: every row committed before
	// the record is discarded at replay, the schema survives.
	TableDDLTruncate uint8 = 2
)

// TableDDLRecord is one DropTable (Op TableDDLDrop) or Truncate
// (Op TableDDLTruncate) appended to the schema log. The schema log is
// replayed in append order and never truncated, so the DDL applies
// exactly once, between the creation it follows and any later
// re-creation of the same name. TS is the oracle timestamp the DDL
// committed at; a truncate discards exactly the rows committed at or
// below it.
type TableDDLRecord struct {
	Name string
	Op   uint8
	TS   uint64
}

func (r TableDDLRecord) encode(dst []byte) []byte {
	e := encoder{b: dst}
	e.u32(tableDDLMarker)
	e.u8(r.Op)
	e.str(r.Name)
	e.u64(r.TS)
	return e.b
}

func decodeTableDDL(payload []byte) (TableDDLRecord, error) {
	d := decoder{b: payload}
	if m := d.u32(); d.err == nil && m != tableDDLMarker {
		return TableDDLRecord{}, fmt.Errorf("wal: table-DDL marker %#x, want %#x", m, tableDDLMarker)
	}
	rec := TableDDLRecord{Op: d.u8()}
	rec.Name = d.str()
	rec.TS = d.u64()
	if d.err == nil && rec.Op != TableDDLDrop && rec.Op != TableDDLTruncate {
		return rec, fmt.Errorf("wal: unknown table-DDL op %d", rec.Op)
	}
	return rec, d.err
}

// isTableDDL reports whether a schema-log payload is a table-DDL
// (DropTable/Truncate) record.
func isTableDDL(payload []byte) bool {
	return len(payload) >= 4 && binary.LittleEndian.Uint32(payload) == tableDDLMarker
}
