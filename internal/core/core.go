package core
