// Package cost provides the simulated kernel cost model used by the
// virtual-memory subsystem simulator (internal/vmem).
//
// The paper's contribution is a custom Linux system call. Re-implementing
// it in user-space Go removes the real hardware costs of entering the
// kernel, walking vm_area_structs, and taking page faults. Without those
// costs, user-space map manipulation would be unrealistically cheap
// relative to the memcpy work of physical snapshotting, and the
// crossovers reported in Table 1 and Figure 5 of the paper would not be
// observable. The Model type makes those per-operation costs explicit,
// calibrated to the same order of magnitude as a Linux kernel on
// commodity hardware, and tunable by experiments (including a zero model
// for pure functional tests).
package cost

import "time"

// Model describes the simulated cost of kernel-level operations.
// All fields are durations charged via a calibrated busy-wait so that
// they are visible to wall-clock measurements at microsecond resolution
// (time.Sleep cannot represent sub-scheduler-quantum costs).
type Model struct {
	// SyscallEntry is charged once per simulated system call
	// (mmap, munmap, mprotect, fork, vm_snapshot): mode switch,
	// register save/restore, and entry bookkeeping.
	SyscallEntry time.Duration

	// VMAOp is charged per vm_area_struct created, split, merged or
	// copied inside a call: allocation, rb-tree relinking, and
	// anon_vma bookkeeping in a real kernel.
	VMAOp time.Duration

	// PageFault is charged per simulated page fault (minor fault or
	// copy-on-write fault): trap entry, fault decoding, and TLB
	// shootdown. The memcpy of the page itself is real work and is
	// not part of this constant.
	PageFault time.Duration

	// SignalDelivery is charged when a fault must be reflected to
	// user space as SIGSEGV (the rewired-snapshotting write path):
	// signal frame setup, handler dispatch, and sigreturn.
	SignalDelivery time.Duration
}

// Default is calibrated to the order of magnitude of Linux on the
// paper's hardware (Xeon E5-2407, kernel 4.8): a syscall round trip in
// the hundreds of nanoseconds, a COW fault slightly cheaper, signal
// delivery considerably more expensive.
var Default = Model{
	SyscallEntry:   600 * time.Nanosecond,
	VMAOp:          100 * time.Nanosecond,
	PageFault:      250 * time.Nanosecond,
	SignalDelivery: 1500 * time.Nanosecond,
}

// Zero charges nothing. Functional tests use it so that correctness
// suites are not slowed down by simulated hardware costs.
var Zero = Model{}

// Spin busy-waits for approximately d. It is used instead of time.Sleep
// because the simulated costs are far below the scheduler quantum.
// Durations <= 0 return immediately.
func Spin(d time.Duration) {
	if d <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
	}
}

// Charge spins for n times d. It short-circuits when either operand is
// zero so that the Zero model has no measurable overhead.
func Charge(d time.Duration, n int) {
	if d <= 0 || n <= 0 {
		return
	}
	Spin(time.Duration(n) * d)
}
