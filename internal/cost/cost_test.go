package cost

import (
	"testing"
	"time"
)

func TestSpinZeroReturnsImmediately(t *testing.T) {
	start := time.Now()
	Spin(0)
	Spin(-time.Second)
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("Spin(<=0) took %v, want immediate return", d)
	}
}

func TestSpinWaitsApproximately(t *testing.T) {
	const want = 2 * time.Millisecond
	start := time.Now()
	Spin(want)
	got := time.Since(start)
	if got < want {
		t.Fatalf("Spin(%v) returned after %v, want at least %v", want, got, want)
	}
	if got > 50*want {
		t.Fatalf("Spin(%v) took %v, far beyond the requested duration", want, got)
	}
}

func TestChargeMultiplies(t *testing.T) {
	const unit = 200 * time.Microsecond
	start := time.Now()
	Charge(unit, 10)
	got := time.Since(start)
	if got < 10*unit {
		t.Fatalf("Charge(%v, 10) took %v, want at least %v", unit, got, 10*unit)
	}
}

func TestChargeShortCircuits(t *testing.T) {
	start := time.Now()
	Charge(0, 1<<30)
	Charge(time.Hour, 0)
	Charge(time.Hour, -1)
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("Charge with zero operand took %v, want immediate return", d)
	}
}

func TestZeroModelIsAllZero(t *testing.T) {
	if Zero != (Model{}) {
		t.Fatalf("Zero model has non-zero fields: %+v", Zero)
	}
}

func TestDefaultModelOrdering(t *testing.T) {
	// Sanity of the calibration: signals cost more than syscalls,
	// syscalls more than faults, faults more than VMA bookkeeping.
	if !(Default.SignalDelivery > Default.SyscallEntry) {
		t.Errorf("SignalDelivery (%v) should exceed SyscallEntry (%v)", Default.SignalDelivery, Default.SyscallEntry)
	}
	if !(Default.SyscallEntry > Default.PageFault) {
		t.Errorf("SyscallEntry (%v) should exceed PageFault (%v)", Default.SyscallEntry, Default.PageFault)
	}
	if !(Default.PageFault > Default.VMAOp) {
		t.Errorf("PageFault (%v) should exceed VMAOp (%v)", Default.PageFault, Default.VMAOp)
	}
}
