// Package repl is the replication and serving transport of AnKerDB: a
// minimal length-prefixed framed protocol over which a primary streams
// durable WAL record payloads (plus a snapshot bootstrap) to read
// replicas, and clients run remote sessions — and the publisher that
// feeds every replica stream in commit order.
//
// Wire format. Every message is one frame:
//
//	[len u32][crc32 u32][type u8][payload]
//
// len counts the body (type byte + payload), crc32 (IEEE) covers the
// body, both little-endian — the same torn-tail-tolerant framing the
// WAL segments use, so a half-written frame is detected, never
// misparsed. Payload encoding depends on the type: replication record
// types (MsgCommit, MsgLoad, MsgSchema) carry WAL record payloads
// verbatim (internal/wal encoding — the replica replays exactly the
// bytes the primary made durable), snapshot table bodies carry the raw
// column-word layout described in the root package, and every control
// message (hello, heartbeat, session requests, ...) is one gob-encoded
// struct.
//
// The package deliberately knows nothing about the engine: it moves
// frames and orders records. The root package owns applying them.
package repl

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"
)

// MsgType tags a frame's body.
type MsgType uint8

// Frame types.
const (
	// MsgHello opens a connection: gob Hello, sent by the client
	// (session or replica) as its first frame.
	MsgHello MsgType = 1
	// MsgWelcome accepts a hello: gob Welcome, the server's first frame.
	MsgWelcome MsgType = 2
	// MsgSchema carries one schema-log record payload (table creation,
	// index DDL or table DDL) in WAL encoding.
	MsgSchema MsgType = 3
	// MsgSnapBegin opens a snapshot bootstrap: gob SnapBegin.
	MsgSnapBegin MsgType = 4
	// MsgSnapTable carries one table's snapshot body (raw column words;
	// layout owned by the root package).
	MsgSnapTable MsgType = 5
	// MsgSnapEnd closes a snapshot bootstrap: gob SnapEnd.
	MsgSnapEnd MsgType = 6
	// MsgCommit carries one commit record payload in WAL encoding.
	MsgCommit MsgType = 7
	// MsgLoad carries one bulk-load chunk record payload in WAL encoding.
	MsgLoad MsgType = 8
	// MsgHeartbeat carries the primary's completion watermark: gob
	// Heartbeat. The stream is ordered so that every record with a
	// commit timestamp at or below the watermark precedes the heartbeat
	// — a replica that applied everything before it may publish the
	// watermark to its readers.
	MsgHeartbeat MsgType = 9
	// MsgAck reports a replica's applied watermark upstream: gob Ack.
	MsgAck MsgType = 10
	// MsgRequest/MsgResponse carry one session operation and its result
	// (gob; request/response structs owned by the root package).
	MsgRequest  MsgType = 11
	MsgResponse MsgType = 12
	// MsgErr carries a fatal connection error: gob WireErr, after which
	// the sender closes.
	MsgErr MsgType = 13
)

// Hello opens a connection.
type Hello struct {
	Role      string // RoleSession or RoleReplica
	Namespace string // tenant the connection addresses
	AfterTS   uint64 // replica resume point: newest applied commit TS (0 = fresh)
}

// Connection roles.
const (
	RoleSession = "session"
	RoleReplica = "replica"
)

// Welcome accepts a Hello.
type Welcome struct {
	// Snapshot reports whether a snapshot bootstrap (schema frames,
	// SnapBegin ... SnapEnd) precedes the live stream. False when the
	// primary can resume the replica from its retained record history.
	Snapshot bool
	// TS is the primary's completion watermark at accept time.
	TS uint64
}

// SnapBegin opens a snapshot bootstrap.
type SnapBegin struct {
	TS     uint64 // snapshot timestamp: the state of every table at TS
	Tables int    // number of MsgSnapTable frames that follow
}

// SnapEnd closes a snapshot bootstrap; the live stream follows.
type SnapEnd struct {
	TS uint64 // equals the SnapBegin TS
}

// Heartbeat publishes the primary's completion watermark.
type Heartbeat struct {
	Watermark uint64
}

// Ack reports the replica's applied watermark.
type Ack struct {
	AppliedTS uint64
}

// WireErr is a fatal error shipped before close. Code optionally names
// a well-known engine sentinel (table owned by the root package, 0 =
// none) so remote clients can rebuild errors.Is-able errors.
type WireErr struct {
	Msg  string
	Code uint8
}

func (e WireErr) Error() string { return e.Msg }

// maxFrameLen bounds a frame body; larger lengths mark a corrupt or
// hostile stream (matches the WAL's frame bound).
const maxFrameLen = 1 << 30

// Conn frames messages over a byte stream. Writes are buffered —
// callers batch records and Flush at stream quiescence points; the
// read side never needs flushing. A Conn serialises writers and
// readers independently, so one sender goroutine and one receiver
// goroutine can share it without locks of their own.
type Conn struct {
	c net.Conn

	rmu  sync.Mutex
	br   *bufio.Reader
	rbuf []byte

	wmu sync.Mutex
	bw  *bufio.Writer
}

// NewConn wraps c for framed messaging.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		c:  c,
		br: bufio.NewReaderSize(c, 1<<16),
		bw: bufio.NewWriterSize(c, 1<<16),
	}
}

// Close closes the underlying connection (buffered writes are not
// flushed — call Flush first for a graceful close).
func (c *Conn) Close() error { return c.c.Close() }

// SetDeadline bounds every pending and future read/write; the zero
// time clears it. Callers use it to bound a bounded exchange (a
// handshake, a bootstrap frame) so a stalled peer produces an error
// instead of a hang.
func (c *Conn) SetDeadline(t time.Time) error { return c.c.SetDeadline(t) }

// SetReadDeadline bounds every pending and future read; the zero time
// clears it.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.c.SetReadDeadline(t) }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// WriteMsg appends one frame to the write buffer.
func (c *Conn) WriteMsg(t MsgType, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.writeMsgLocked(t, payload)
}

func (c *Conn) writeMsgLocked(t MsgType, payload []byte) error {
	if len(payload)+1 > maxFrameLen {
		return fmt.Errorf("repl: frame body %d bytes exceeds limit", len(payload)+1)
	}
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)+1))
	crc := crc32.NewIEEE()
	hdr[8] = byte(t)
	_, _ = crc.Write(hdr[8:9])
	_, _ = crc.Write(payload)
	binary.LittleEndian.PutUint32(hdr[4:], crc.Sum32())
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.bw.Write(payload)
	return err
}

// Flush pushes buffered frames to the wire.
func (c *Conn) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.bw.Flush()
}

// Send writes one frame and flushes — the request/response pattern.
func (c *Conn) Send(t MsgType, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.writeMsgLocked(t, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// ReadMsg reads the next frame. The returned payload is only valid
// until the next ReadMsg call. A bad length or checksum returns an
// error — the stream cannot be trusted past it.
func (c *Conn) ReadMsg() (MsgType, []byte, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var hdr [8]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if n == 0 || n > maxFrameLen {
		return 0, nil, fmt.Errorf("repl: frame body length %d out of range", n)
	}
	if uint64(n) > uint64(cap(c.rbuf)) {
		c.rbuf = make([]byte, n)
	}
	body := c.rbuf[:n]
	if _, err := io.ReadFull(c.br, body); err != nil {
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(body) != crc {
		return 0, nil, fmt.Errorf("repl: frame checksum mismatch")
	}
	return MsgType(body[0]), body[1:], nil
}

// EncodeGob serialises v for a gob-payload frame.
func EncodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeGob deserialises a gob-payload frame body into v.
func DecodeGob(payload []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// SendGob gob-encodes v into one frame and flushes.
func (c *Conn) SendGob(t MsgType, v any) error {
	p, err := EncodeGob(v)
	if err != nil {
		return err
	}
	return c.Send(t, p)
}

// WriteGob gob-encodes v into one buffered frame (no flush).
func (c *Conn) WriteGob(t MsgType, v any) error {
	p, err := EncodeGob(v)
	if err != nil {
		return err
	}
	return c.WriteMsg(t, p)
}

// SendErr ships a WireErr frame (best-effort) so the peer sees why the
// connection is about to close.
func (c *Conn) SendErr(msg string) {
	_ = c.SendGob(MsgErr, WireErr{Msg: msg})
}
