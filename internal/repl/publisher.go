package repl

import (
	"sync"
	"sync/atomic"
)

// Record is one replication stream element: a WAL record payload
// tagged with its frame type and, for commit records, the commit
// timestamp that gates its release.
type Record struct {
	TS      uint64  // commit timestamp; 0 for loads and schema records
	Type    MsgType // MsgCommit, MsgLoad, MsgSchema or MsgHeartbeat
	Payload []byte
}

// Publisher turns the WAL's append hooks into per-subscriber record
// streams that are safe to publish, in the exact order a replica must
// apply them.
//
// Ordering contract. Stage is called from the WAL append hooks, under
// the shard append lock, the moment a record is durable — which is
// strictly before the commit pipeline passes the record's timestamp to
// the oracle. Advance is called from the oracle's completion hook with
// each watermark step. Staged records release to subscribers in stage
// order (FIFO), but a commit record is held until the watermark covers
// its timestamp. Two consequences:
//
//   - Per column and per visibility column the stream is in timestamp
//     order (those records share a commit shard, whose appends are
//     FIFO), so a single-threaded applier reproduces primary state.
//   - When a heartbeat carrying watermark W reaches a subscriber,
//     every record with TS <= W precedes it in that subscriber's
//     stream: the watermark only reached W after those records
//     completed, completion implies they were staged, and the FIFO
//     released them before the heartbeat was enqueued. A replica that
//     applied everything before the heartbeat may publish W.
//
// Schema and load records carry no timestamp and release immediately
// in stage order, preserving their position relative to the commits
// around them (a table creation precedes every commit that addresses
// it; a table-DDL record follows every commit its timestamp covers,
// because the primary only logs DDL while holding every shard lock).
//
// Flow control is per subscriber: a bounded channel, non-blocking
// sends. A subscriber that falls a full buffer behind is disconnected
// (its channel closes) rather than allowed to stall the primary's
// commit path — the replica reconnects and resumes from its applied
// watermark, or re-bootstraps if the retained history no longer
// reaches back that far.
type Publisher struct {
	mu      sync.Mutex
	queue   []Record  // staged, awaiting watermark release
	history []histRec // released records retained for reconnect resume
	histCap int
	// histFloor is the highest eviction floor of any record evicted from
	// history: a resume is possible only from AfterTS >= histFloor,
	// because a replica further behind may never have received an
	// evicted record (see histRec.floor).
	histFloor uint64
	subs      map[*Subscriber]struct{}
	closed    bool

	// oracleW is the newest completion watermark Advance has seen — the
	// release gate for staged commits.
	oracleW uint64

	// watermark is the *published* watermark: the newest timestamp all
	// of whose covered records have been released to every live
	// subscriber. It trails oracleW whenever FIFO head-of-line blocking
	// holds covered records behind a not-yet-completed commit, so an
	// out-of-band reader (periodic heartbeats) can never announce a
	// timestamp ahead of a subscriber's stream contents.
	watermark atomic.Uint64

	frames atomic.Uint64 // records released to the stream
	drops  atomic.Uint64 // subscribers disconnected by overflow
}

// histRec is one retained history record plus the resume floor its
// eviction imposes: the smallest AfterTS that still proves a resuming
// replica received the record. For a commit record that is its own
// timestamp — an applied watermark at or above it implies the covered
// record was received and applied. A timestamp-less schema/load record
// offers no such proof through the applied watermark alone, so its
// floor is one past the published watermark at release time: only a
// heartbeat enqueued after the release can carry a higher watermark,
// and the FIFO stream puts the record before that heartbeat — a
// replica acking past the floor necessarily received it. Evicting with
// a floor of just the record's own properties would let Resume replay
// a suffix missing an evicted schema record, after which the replica
// silently skips every commit addressing the unknown table while still
// acking watermarks (silent permanent divergence).
type histRec struct {
	rec   Record
	floor uint64
}

// defaultHistCap bounds the retained record history (reconnect resume
// window) when NewPublisher is given no explicit capacity.
const defaultHistCap = 1 << 16

// NewPublisher returns a publisher retaining up to histCap released
// records for reconnect resume (<= 0 selects the default).
func NewPublisher(histCap int) *Publisher {
	if histCap <= 0 {
		histCap = defaultHistCap
	}
	return &Publisher{histCap: histCap, subs: map[*Subscriber]struct{}{}}
}

// Stage enqueues one durable record. Called from the WAL append hooks
// under the shard append lock: it must stay cheap (slice append plus
// non-blocking channel sends).
func (p *Publisher) Stage(rec Record) {
	p.mu.Lock()
	p.queue = append(p.queue, rec)
	p.drainLocked()
	p.mu.Unlock()
}

// Advance moves the release gate to completion watermark ts (monotone;
// lower values are ignored), releases every staged record it covers,
// and — when the published watermark advanced — sends an in-band
// heartbeat carrying it. Called from the oracle's completion hook.
func (p *Publisher) Advance(ts uint64) {
	p.mu.Lock()
	if ts > p.oracleW {
		p.oracleW = ts
		before := p.watermark.Load()
		p.drainLocked()
		if w := p.watermark.Load(); w > before {
			for s := range p.subs {
				// Best-effort: a skipped heartbeat is re-announced by the
				// next advance or the sender's periodic heartbeat; never a
				// reason to drop a subscriber.
				select {
				case s.ch <- Record{Type: MsgHeartbeat, TS: w}:
				default:
				}
			}
		}
	}
	p.mu.Unlock()
}

// drainLocked releases the queue prefix the completion watermark
// covers, then recomputes the published watermark: the oracle
// watermark, capped below the oldest still-held commit — a held record
// behind a head-of-line block must never be announced as applied.
func (p *Publisher) drainLocked() {
	for len(p.queue) > 0 && (p.queue[0].TS == 0 || p.queue[0].TS <= p.oracleW) {
		rec := p.queue[0]
		p.queue = p.queue[1:]
		p.emitLocked(rec)
	}
	pub := p.oracleW
	for _, rec := range p.queue {
		if rec.TS > 0 && rec.TS-1 < pub {
			pub = rec.TS - 1
		}
	}
	if pub > p.watermark.Load() {
		p.watermark.Store(pub)
	}
}

// emitLocked fans one released record out to every subscriber and
// retains it in the resume history.
func (p *Publisher) emitLocked(rec Record) {
	p.frames.Add(1)
	floor := rec.TS
	if rec.TS == 0 {
		// Schema/load record: pin the eviction floor one past the
		// published watermark as of this release (see histRec). The read
		// deliberately precedes the enclosing drain's recompute: any
		// heartbeat carrying a watermark above the pre-drain value is
		// enqueued after this record, which is exactly the ordering the
		// floor's safety argument needs.
		floor = p.watermark.Load() + 1
	}
	if len(p.history) >= p.histCap {
		old := p.history[0]
		// Shift rather than reslice so the backing array is reused and
		// evicted payloads become collectable.
		copy(p.history, p.history[1:])
		p.history = p.history[:len(p.history)-1]
		if old.floor > p.histFloor {
			p.histFloor = old.floor
		}
	}
	p.history = append(p.history, histRec{rec: rec, floor: floor})
	for s := range p.subs {
		select {
		case s.ch <- rec:
		default:
			// Overflow: the subscriber is a full buffer behind. Cut it
			// loose — stalling Stage would stall the primary's commit
			// path, which the bounded buffer exists to prevent.
			p.drops.Add(1)
			delete(p.subs, s)
			s.lost.Store(true)
			close(s.ch)
		}
	}
}

// Subscriber is one replica stream attachment. Receive from C; a
// closed C means the publisher shut down or this subscriber overflowed
// (Lost reports which).
type Subscriber struct {
	C    <-chan Record
	ch   chan Record
	lost atomic.Bool
}

// Lost reports whether the subscriber was disconnected for falling
// behind (rather than by publisher shutdown).
func (s *Subscriber) Lost() bool { return s.lost.Load() }

// Attach subscribes to the live stream with a buffer of buf records
// (<= 0 selects 4096), receiving every record released after the call.
// The caller must attach *before* capturing a bootstrap snapshot:
// records released between attach and capture are duplicated into the
// snapshot, which replay-by-timestamp makes harmless, while the
// reverse order would lose them.
func (p *Publisher) Attach(buf int) *Subscriber {
	if buf <= 0 {
		buf = 4096
	}
	s := &Subscriber{ch: make(chan Record, buf)}
	s.C = s.ch
	p.mu.Lock()
	if p.closed {
		close(s.ch)
		s.lost.Store(true)
	} else {
		p.subs[s] = struct{}{}
	}
	p.mu.Unlock()
	return s
}

// Resume attaches a reconnecting replica that has already applied
// everything at or below afterTS: the retained history suffix above
// afterTS (plus its timestamp-less schema/load records, which re-apply
// idempotently) is preloaded into the subscriber's buffer, and the
// live stream follows. Returns (nil, false) when the history no longer
// reaches back to afterTS or the suffix exceeds buf — the replica must
// re-bootstrap from a snapshot instead.
func (p *Publisher) Resume(afterTS uint64, buf int) (*Subscriber, bool) {
	if buf <= 0 {
		buf = 4096
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || afterTS < p.histFloor {
		return nil, false
	}
	var replay []Record
	for _, h := range p.history {
		if h.rec.TS == 0 || h.rec.TS > afterTS {
			replay = append(replay, h.rec)
		}
	}
	if len(replay) >= buf {
		return nil, false
	}
	s := &Subscriber{ch: make(chan Record, buf)}
	s.C = s.ch
	for _, rec := range replay {
		s.ch <- rec
	}
	// The preloaded suffix ends at the current watermark by
	// construction; announce it so the replica publishes its catch-up.
	if w := p.watermark.Load(); w > afterTS {
		s.ch <- Record{Type: MsgHeartbeat, TS: w}
	}
	p.subs[s] = struct{}{}
	return s, true
}

// Detach removes a subscriber (idempotent; safe after overflow).
func (p *Publisher) Detach(s *Subscriber) {
	p.mu.Lock()
	if _, ok := p.subs[s]; ok {
		delete(p.subs, s)
		close(s.ch)
	}
	p.mu.Unlock()
}

// Close disconnects every subscriber and refuses new ones.
func (p *Publisher) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		for s := range p.subs {
			delete(p.subs, s)
			close(s.ch)
		}
	}
	p.mu.Unlock()
}

// Watermark returns the newest published watermark: every record it
// covers has been released to every live subscriber's buffer, so it is
// safe to announce out of band (periodic heartbeats).
func (p *Publisher) Watermark() uint64 { return p.watermark.Load() }

// Subscribers returns the live subscriber count.
func (p *Publisher) Subscribers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.subs)
}

// Frames returns the cumulative count of records released to the
// stream (per record, not per subscriber).
func (p *Publisher) Frames() uint64 { return p.frames.Load() }

// Drops returns the cumulative count of subscribers disconnected for
// falling behind.
func (p *Publisher) Drops() uint64 { return p.drops.Load() }
