package repl

import (
	"encoding/binary"
	"net"
	"testing"
)

func pipeConns(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	t.Cleanup(func() { _ = ca.Close(); _ = cb.Close() })
	return ca, cb
}

func TestFrameRoundTrip(t *testing.T) {
	ca, cb := pipeConns(t)
	done := make(chan error, 1)
	go func() {
		if err := ca.WriteMsg(MsgCommit, []byte("payload-1")); err != nil {
			done <- err
			return
		}
		if err := ca.WriteMsg(MsgLoad, nil); err != nil {
			done <- err
			return
		}
		if err := ca.WriteGob(MsgHeartbeat, Heartbeat{Watermark: 42}); err != nil {
			done <- err
			return
		}
		done <- ca.Flush()
	}()
	typ, payload, err := cb.ReadMsg()
	if err != nil || typ != MsgCommit || string(payload) != "payload-1" {
		t.Fatalf("frame 1: type=%d payload=%q err=%v", typ, payload, err)
	}
	typ, payload, err = cb.ReadMsg()
	if err != nil || typ != MsgLoad || len(payload) != 0 {
		t.Fatalf("frame 2: type=%d payload=%q err=%v", typ, payload, err)
	}
	typ, payload, err = cb.ReadMsg()
	if err != nil || typ != MsgHeartbeat {
		t.Fatalf("frame 3: type=%d err=%v", typ, err)
	}
	var hb Heartbeat
	if err := DecodeGob(payload, &hb); err != nil || hb.Watermark != 42 {
		t.Fatalf("heartbeat decode: %+v err=%v", hb, err)
	}
	if err := <-done; err != nil {
		t.Fatalf("writer: %v", err)
	}
}

func TestFrameChecksumRejected(t *testing.T) {
	a, b := net.Pipe()
	cb := NewConn(b)
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })
	go func() {
		// Hand-build a frame whose CRC does not match its body.
		body := []byte{byte(MsgCommit), 'x', 'y'}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
		binary.LittleEndian.PutUint32(hdr[4:], 0xdeadbeef)
		_, _ = a.Write(hdr[:])
		_, _ = a.Write(body)
	}()
	if _, _, err := cb.ReadMsg(); err == nil {
		t.Fatalf("corrupt frame accepted")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	ca, cb := pipeConns(t)
	go func() {
		_ = ca.SendGob(MsgHello, Hello{Role: RoleReplica, Namespace: "tenant-a", AfterTS: 7})
	}()
	typ, payload, err := cb.ReadMsg()
	if err != nil || typ != MsgHello {
		t.Fatalf("type=%d err=%v", typ, err)
	}
	var h Hello
	if err := DecodeGob(payload, &h); err != nil {
		t.Fatal(err)
	}
	if h.Role != RoleReplica || h.Namespace != "tenant-a" || h.AfterTS != 7 {
		t.Fatalf("hello: %+v", h)
	}
}

// collect drains everything currently buffered in the subscriber.
func collect(s *Subscriber) []Record {
	var out []Record
	for {
		select {
		case rec, ok := <-s.C:
			if !ok {
				return out
			}
			out = append(out, rec)
		default:
			return out
		}
	}
}

func TestPublisherHoldsUntilWatermark(t *testing.T) {
	p := NewPublisher(0)
	s := p.Attach(16)
	p.Stage(Record{TS: 5, Type: MsgCommit, Payload: []byte("c5")})
	p.Stage(Record{TS: 6, Type: MsgCommit, Payload: []byte("c6")})
	if got := collect(s); len(got) != 0 {
		t.Fatalf("records released before watermark: %d", len(got))
	}
	p.Advance(5)
	got := collect(s)
	if len(got) != 2 || got[0].TS != 5 || got[1].Type != MsgHeartbeat || got[1].TS != 5 {
		t.Fatalf("after advance(5): %+v", got)
	}
	p.Advance(6)
	got = collect(s)
	if len(got) != 2 || got[0].TS != 6 || got[1].Type != MsgHeartbeat || got[1].TS != 6 {
		t.Fatalf("after advance(6): %+v", got)
	}
	if p.Watermark() != 6 {
		t.Fatalf("watermark = %d", p.Watermark())
	}
}

func TestPublisherFIFOAcrossShards(t *testing.T) {
	// Shard A's batch [10..11] is staged (appended) before shard B's
	// [5..6]: release order must follow stage order once the watermark
	// covers both, and the heartbeat must come last.
	p := NewPublisher(0)
	s := p.Attach(16)
	p.Stage(Record{TS: 10, Type: MsgCommit})
	p.Stage(Record{TS: 11, Type: MsgCommit})
	p.Stage(Record{TS: 5, Type: MsgCommit})
	p.Stage(Record{TS: 6, Type: MsgCommit})
	p.Advance(9) // 5..9 completed, 10.. not yet: nothing releasable at the head
	for _, rec := range collect(s) {
		// No records may release, and any heartbeat must stay below the
		// held records' timestamps — announcing 5..9 before delivering
		// the stuck records 5 and 6 would violate the stream contract.
		if rec.Type != MsgHeartbeat || rec.TS >= 5 {
			t.Fatalf("released early: %+v", rec)
		}
	}
	p.Advance(11)
	got := collect(s)
	want := []uint64{10, 11, 5, 6}
	if len(got) != 5 {
		t.Fatalf("got %d records", len(got))
	}
	for i, ts := range want {
		if got[i].TS != ts || got[i].Type != MsgCommit {
			t.Fatalf("record %d: %+v, want TS %d", i, got[i], ts)
		}
	}
	if got[4].Type != MsgHeartbeat || got[4].TS != 11 {
		t.Fatalf("tail: %+v", got[4])
	}
}

func TestPublisherZeroTSPassThrough(t *testing.T) {
	p := NewPublisher(0)
	s := p.Attach(16)
	p.Stage(Record{TS: 3, Type: MsgCommit})
	// Schema staged behind a held commit must wait for it (FIFO), so a
	// truncate can never overtake the commits its timestamp covers.
	p.Stage(Record{TS: 0, Type: MsgSchema, Payload: []byte("ddl")})
	if got := collect(s); len(got) != 0 {
		t.Fatalf("schema overtook a held commit: %+v", got)
	}
	p.Advance(3)
	got := collect(s)
	if len(got) != 3 || got[0].TS != 3 || got[1].Type != MsgSchema || got[2].Type != MsgHeartbeat {
		t.Fatalf("release order: %+v", got)
	}
	// With an empty queue, timestamp-less records release immediately.
	p.Stage(Record{TS: 0, Type: MsgLoad})
	if got := collect(s); len(got) != 1 || got[0].Type != MsgLoad {
		t.Fatalf("load not passed through: %+v", got)
	}
}

func TestPublisherOverflowDisconnects(t *testing.T) {
	p := NewPublisher(0)
	s := p.Attach(2)
	for ts := uint64(1); ts <= 4; ts++ {
		p.Stage(Record{TS: ts, Type: MsgCommit})
		p.Advance(ts)
	}
	// Buffer of 2 cannot hold 4 records: the subscriber must be cut.
	var got []Record
	for rec := range s.C {
		got = append(got, rec)
	}
	if !s.Lost() {
		t.Fatalf("overflowed subscriber not marked lost")
	}
	if p.Subscribers() != 0 {
		t.Fatalf("lost subscriber still attached")
	}
	if p.Drops() != 1 {
		t.Fatalf("drops = %d", p.Drops())
	}
	if len(got) == 0 {
		t.Fatalf("no records delivered before disconnect")
	}
}

func TestPublisherResume(t *testing.T) {
	p := NewPublisher(0)
	for ts := uint64(1); ts <= 10; ts++ {
		p.Stage(Record{TS: ts, Type: MsgCommit})
		p.Advance(ts)
	}
	p.Stage(Record{TS: 0, Type: MsgSchema})
	s, ok := p.Resume(7, 64)
	if !ok {
		t.Fatalf("resume refused inside history window")
	}
	got := collect(s)
	// Suffix above 7 (8, 9, 10), the schema record, and the catch-up
	// heartbeat.
	var ts []uint64
	for _, r := range got {
		if r.Type == MsgCommit {
			ts = append(ts, r.TS)
		}
	}
	if len(ts) != 3 || ts[0] != 8 || ts[2] != 10 {
		t.Fatalf("resume suffix: %v", ts)
	}
	if got[len(got)-1].Type != MsgHeartbeat || got[len(got)-1].TS != 10 {
		t.Fatalf("resume tail: %+v", got[len(got)-1])
	}
	// Live records keep flowing after resume.
	p.Stage(Record{TS: 11, Type: MsgCommit})
	p.Advance(11)
	live := collect(s)
	if len(live) != 2 || live[0].TS != 11 {
		t.Fatalf("live after resume: %+v", live)
	}
}

func TestPublisherResumeRefusedPastHistory(t *testing.T) {
	p := NewPublisher(4)
	for ts := uint64(1); ts <= 10; ts++ {
		p.Stage(Record{TS: ts, Type: MsgCommit})
		p.Advance(ts)
	}
	// History holds only the newest 4 records (7..10); resuming from 3
	// would skip 4..6.
	if _, ok := p.Resume(3, 64); ok {
		t.Fatalf("resume allowed past evicted history")
	}
	if s, ok := p.Resume(6, 64); !ok {
		t.Fatalf("resume refused at history edge")
	} else {
		p.Detach(s)
	}
}

func TestPublisherResumeRefusedPastEvictedSchema(t *testing.T) {
	p := NewPublisher(4)
	// Commits 1..3 release (published watermark 3), then a schema
	// record: its eviction floor is 4 — only a replica whose applied
	// watermark moved past 3 provably received it (the heartbeat that
	// carried the higher watermark was enqueued after the release).
	for ts := uint64(1); ts <= 3; ts++ {
		p.Stage(Record{TS: ts, Type: MsgCommit})
		p.Advance(ts)
	}
	p.Stage(Record{TS: 0, Type: MsgSchema, Payload: []byte("create")})
	// Push the schema record out of the 4-slot history without evicting
	// any commit at or above TS 4, so the floor raise under test can
	// only come from the schema record itself.
	for ts := uint64(4); ts <= 7; ts++ {
		p.Stage(Record{TS: ts, Type: MsgCommit})
		p.Advance(ts)
	}
	// afterTS 3: the replica applied 1..3 but may have disconnected
	// before the schema record reached it, and the replayed suffix no
	// longer contains it — resuming would silently skip every commit
	// addressing the table it created.
	if _, ok := p.Resume(3, 64); ok {
		t.Fatalf("resume allowed across an evicted schema record")
	}
	if s, ok := p.Resume(4, 64); !ok {
		t.Fatalf("resume refused above the schema record's eviction floor")
	} else {
		p.Detach(s)
	}
}

func TestPublisherClose(t *testing.T) {
	p := NewPublisher(0)
	s := p.Attach(4)
	p.Close()
	if _, ok := <-s.C; ok {
		t.Fatalf("channel open after close")
	}
	if s.Lost() {
		t.Fatalf("shutdown mis-flagged as overflow loss")
	}
	late := p.Attach(4)
	if _, ok := <-late.C; ok {
		t.Fatalf("attach after close returned live channel")
	}
}

func TestWireErrAndSendErr(t *testing.T) {
	we := WireErr{Msg: "boom", Code: 3}
	if we.Error() != "boom" {
		t.Fatalf("WireErr.Error() = %q", we.Error())
	}
	ca, cb := pipeConns(t)
	if ca.RemoteAddr() == nil {
		t.Fatal("RemoteAddr = nil")
	}
	done := make(chan error, 1)
	go func() { done <- ca.Flush() }() // SendErr flushes; pipe needs a reader
	go ca.SendErr("sent over the wire")
	typ, payload, err := cb.ReadMsg()
	if err != nil || typ != MsgErr {
		t.Fatalf("ReadMsg = %d, %v", typ, err)
	}
	var got WireErr
	if err := DecodeGob(payload, &got); err != nil || got.Msg != "sent over the wire" {
		t.Fatalf("decoded %+v, %v", got, err)
	}
}

func TestPublisherFrameCount(t *testing.T) {
	p := NewPublisher(0)
	s := p.Attach(16)
	defer p.Detach(s)
	p.Stage(Record{TS: 1, Type: MsgCommit})
	p.Stage(Record{TS: 2, Type: MsgCommit})
	p.Advance(2)
	if got := p.Frames(); got != 2 {
		t.Fatalf("Frames() = %d, want 2", got)
	}
	if p.Drops() != 0 {
		t.Fatalf("Drops() = %d, want 0", p.Drops())
	}
}
