package ankerdb

import (
	"ankerdb/internal/cost"
	"ankerdb/internal/index"
	"ankerdb/internal/mvcc"
	"ankerdb/internal/storage"
	"ankerdb/internal/vmem"
)

// The facade re-exports the handful of internal types that appear in
// its API as aliases, so callers build schemas, pick transaction
// classes and tune cost models without importing internal packages
// (which the Go toolchain forbids outside this module).

// Schema declares a table layout.
type Schema = storage.Schema

// ColumnDef declares one column of a Schema.
type ColumnDef = storage.ColumnDef

// ColumnType is the logical type of a column; every type is physically
// a 64-bit word.
type ColumnType = storage.Type

// Column types.
const (
	Int64   = storage.Int64
	Money   = storage.Money
	Date    = storage.Date
	Varchar = storage.Varchar
)

// IndexKind selects the physical layout of a secondary index: Hash
// serves equality probes in O(1), Ordered (sorted runs) additionally
// serves ranges. NoIndex — the zero value — declares no index.
type IndexKind = index.Kind

// Index kinds, used in ColumnDef.Index, SchemaBuilder.Indexed and
// DB.CreateIndex.
const (
	NoIndex = index.None
	Hash    = index.Hash
	Ordered = index.Ordered
)

// SchemaBuilder composes a Schema fluently:
//
//	db.CreateTable(ankerdb.NewSchema("users").
//		Int64("uid").Indexed(ankerdb.Hash).
//		String("email").Indexed(ankerdb.Ordered).
//		Money("balance").
//		Build(), 1<<16)
//
// The literal Schema{...} form keeps working — the builder produces
// the same exported fields.
type SchemaBuilder struct {
	s Schema
}

// NewSchema starts a builder for the named table.
func NewSchema(table string) *SchemaBuilder {
	return &SchemaBuilder{s: Schema{Table: table}}
}

func (b *SchemaBuilder) column(name string, t ColumnType) *SchemaBuilder {
	b.s.Columns = append(b.s.Columns, ColumnDef{Name: name, Type: t})
	return b
}

// Int64 appends an INT64 column.
func (b *SchemaBuilder) Int64(name string) *SchemaBuilder { return b.column(name, Int64) }

// Money appends a MONEY column (fixed-point cents).
func (b *SchemaBuilder) Money(name string) *SchemaBuilder { return b.column(name, Money) }

// Date appends a DATE column (days since 1970-01-01).
func (b *SchemaBuilder) Date(name string) *SchemaBuilder { return b.column(name, Date) }

// String appends a VARCHAR column (dictionary-encoded).
func (b *SchemaBuilder) String(name string) *SchemaBuilder { return b.column(name, Varchar) }

// Varchar is an alias for String.
func (b *SchemaBuilder) Varchar(name string) *SchemaBuilder { return b.column(name, Varchar) }

// Indexed declares a secondary index of the given kind on the most
// recently appended column. On a VARCHAR column the index covers
// dictionary codes, so equality probes work but ordered ranges follow
// code order, not lexicographic order.
func (b *SchemaBuilder) Indexed(kind IndexKind) *SchemaBuilder {
	if n := len(b.s.Columns); n > 0 {
		b.s.Columns[n-1].Index = kind
	}
	return b
}

// Build returns the composed Schema.
func (b *SchemaBuilder) Build() Schema {
	s := b.s
	s.Columns = append([]ColumnDef(nil), b.s.Columns...)
	return s
}

// TxnClass is the paper's transaction classification: short modifying
// OLTP transactions versus long read-only OLAP transactions.
type TxnClass = mvcc.Class

// Transaction classes, passed to DB.Begin.
const (
	OLTP = mvcc.OLTP
	OLAP = mvcc.OLAP
)

// CostModel is the simulated kernel cost model charged by the virtual
// memory subsystem (syscall entries, VMA operations, page faults,
// signal delivery).
type CostModel = cost.Model

// Predefined cost models: DefaultCost is calibrated to the order of
// magnitude of Linux on the paper's hardware; ZeroCost charges nothing
// and suits functional tests.
var (
	DefaultCost = cost.Default
	ZeroCost    = cost.Zero
)

// VMStats are the cumulative counters of the simulated virtual memory
// subsystem (COW breaks, minor faults, VMA bookkeeping, vm_snapshot
// calls), reported inside Stats.
type VMStats = vmem.Stats
