package ankerdb

import (
	"ankerdb/internal/cost"
	"ankerdb/internal/mvcc"
	"ankerdb/internal/storage"
	"ankerdb/internal/vmem"
)

// The facade re-exports the handful of internal types that appear in
// its API as aliases, so callers build schemas, pick transaction
// classes and tune cost models without importing internal packages
// (which the Go toolchain forbids outside this module).

// Schema declares a table layout.
type Schema = storage.Schema

// ColumnDef declares one column of a Schema.
type ColumnDef = storage.ColumnDef

// ColumnType is the logical type of a column; every type is physically
// a 64-bit word.
type ColumnType = storage.Type

// Column types.
const (
	Int64   = storage.Int64
	Money   = storage.Money
	Date    = storage.Date
	Varchar = storage.Varchar
)

// TxnClass is the paper's transaction classification: short modifying
// OLTP transactions versus long read-only OLAP transactions.
type TxnClass = mvcc.Class

// Transaction classes, passed to DB.Begin.
const (
	OLTP = mvcc.OLTP
	OLAP = mvcc.OLAP
)

// CostModel is the simulated kernel cost model charged by the virtual
// memory subsystem (syscall entries, VMA operations, page faults,
// signal delivery).
type CostModel = cost.Model

// Predefined cost models: DefaultCost is calibrated to the order of
// magnitude of Linux on the paper's hardware; ZeroCost charges nothing
// and suits functional tests.
var (
	DefaultCost = cost.Default
	ZeroCost    = cost.Zero
)

// VMStats are the cumulative counters of the simulated virtual memory
// subsystem (COW breaks, minor faults, VMA bookkeeping, vm_snapshot
// calls), reported inside Stats.
type VMStats = vmem.Stats
