package ankerdb_test

// The facade tests use only the public ankerdb package — no internal
// imports — which is exactly the acceptance bar for the API: open a
// database, create tables, commit OLTP writes, and run snapshot-
// isolated OLAP scans under every snapshot strategy.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ankerdb"
)

var strategies = []ankerdb.SnapshotStrategy{
	ankerdb.Physical, ankerdb.Fork, ankerdb.Rewired, ankerdb.VMSnap,
}

const testRows = 2048

func openTestDB(t *testing.T, strat ankerdb.SnapshotStrategy, opts ...ankerdb.Option) *ankerdb.DB {
	t.Helper()
	db, err := ankerdb.Open(append([]ankerdb.Option{
		ankerdb.WithSnapshotStrategy(strat),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
		ankerdb.WithInitialSchema(ankerdb.Schema{
			Table: "acct",
			Columns: []ankerdb.ColumnDef{
				{Name: "bal", Type: ankerdb.Money},
				{Name: "flags", Type: ankerdb.Int64},
			},
		}, testRows),
	}, opts...)...)
	if err != nil {
		t.Fatalf("Open(%s): %v", strat, err)
	}
	return db
}

func mustCommit(t *testing.T, txn *ankerdb.Txn) {
	t.Helper()
	if err := txn.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

// set commits one OLTP write.
func set(t *testing.T, db *ankerdb.DB, tab, col string, row int, v int64) {
	t.Helper()
	w, err := db.Begin(ankerdb.OLTP)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := w.Set(tab, col, row, v); err != nil {
		t.Fatalf("Set: %v", err)
	}
	mustCommit(t, w)
}

// TestSnapshotIsolation is the core acceptance test: an OLAP
// transaction pins its snapshot timestamp at Begin and must never
// observe writes committed afterwards, under every strategy.
func TestSnapshotIsolation(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openTestDB(t, strat)
			defer db.Close()

			for row := 0; row < 8; row++ {
				set(t, db, "acct", "bal", row, 100)
			}

			r, err := db.Begin(ankerdb.OLAP)
			if err != nil {
				t.Fatalf("Begin(OLAP): %v", err)
			}

			// Writes committed after the OLAP begin: invisible to r,
			// even though its column snapshot is only created lazily by
			// the scan below (chain repair must hide them).
			for row := 0; row < 8; row++ {
				set(t, db, "acct", "bal", row, 999)
			}
			set(t, db, "acct", "bal", 2047, 555)

			got, err := r.Scan("acct", "bal")
			if err != nil {
				t.Fatalf("Scan: %v", err)
			}
			for row := 0; row < 8; row++ {
				if got[row] != 100 {
					t.Fatalf("row %d: OLAP read %d, want pre-snapshot 100", row, got[row])
				}
			}
			if got[2047] != 0 {
				t.Fatalf("row 2047: OLAP read %d, want 0", got[2047])
			}
			if sum, _ := r.Aggregate("acct", "bal", ankerdb.Sum); sum != 800 {
				t.Fatalf("Sum = %d, want 800", sum)
			}
			if v, err := r.Get("acct", "bal", 3); err != nil || v != 100 {
				t.Fatalf("Get = %d, %v, want 100", v, err)
			}
			if st := r.Staleness(); st == 0 {
				t.Fatalf("Staleness = 0, want > 0 after post-begin commits")
			}
			mustCommit(t, r)

			// A fresh OLAP transaction (refresh default: every commit)
			// sees the new state.
			r2, _ := db.Begin(ankerdb.OLAP)
			if v, err := r2.Get("acct", "bal", 0); err != nil || v != 999 {
				t.Fatalf("fresh OLAP Get = %d, %v, want 999", v, err)
			}
			if rows, _ := r2.Filter("acct", "bal", 555, 555); len(rows) != 1 || rows[0] != 2047 {
				t.Fatalf("Filter(555) = %v, want [2047]", rows)
			}
			mustCommit(t, r2)
		})
	}
}

// TestReleaseAccounting checks the snapshot lifecycle manager's
// reference counting: every created column snapshot is released once
// the last transaction pin drops and the database is closed.
func TestReleaseAccounting(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openTestDB(t, strat)
			set(t, db, "acct", "bal", 0, 1)

			var txns []*ankerdb.Txn
			for i := 0; i < 3; i++ {
				r, err := db.Begin(ankerdb.OLAP)
				if err != nil {
					t.Fatalf("Begin: %v", err)
				}
				if _, err := r.Scan("acct", "bal"); err != nil {
					t.Fatalf("Scan: %v", err)
				}
				txns = append(txns, r)
				set(t, db, "acct", "bal", i, int64(i)) // force rotation
			}
			st := db.Stats()
			if st.SnapshotsCreated == 0 || st.ActiveSnapshots == 0 {
				t.Fatalf("expected live snapshots, got %+v", st)
			}
			for _, r := range txns {
				mustCommit(t, r)
			}
			if err := db.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			st = db.Stats()
			if st.ActiveSnapshots != 0 {
				t.Fatalf("%d snapshots leaked after Close (created %d, released %d)",
					st.ActiveSnapshots, st.SnapshotsCreated, st.SnapshotsReleased)
			}
		})
	}
}

// TestRotationReleasesIdleGeneration: when the refresh policy rotates
// a generation no transaction holds any more, the rotation itself must
// release its snapshots (regression: the manager's pin was dropped
// without destroying the dead generation).
func TestRotationReleasesIdleGeneration(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openTestDB(t, strat)
			defer db.Close()

			r, _ := db.Begin(ankerdb.OLAP)
			if _, err := r.Scan("acct", "bal"); err != nil {
				t.Fatalf("Scan: %v", err)
			}
			mustCommit(t, r) // generation now held only by the manager

			set(t, db, "acct", "bal", 0, 1) // default refresh=1: stale

			r2, _ := db.Begin(ankerdb.OLAP) // rotation destroys the old generation
			if _, err := r2.Scan("acct", "bal"); err != nil {
				t.Fatalf("Scan: %v", err)
			}
			st := db.Stats()
			if st.SnapshotsCreated != 2 || st.ActiveSnapshots != 1 {
				t.Fatalf("after rotation: created %d, active %d, want 2 created / 1 active",
					st.SnapshotsCreated, st.ActiveSnapshots)
			}
			mustCommit(t, r2)
		})
	}
}

// TestFineGranularSnapshots checks the paper's headline mode: only the
// columns a query touches are snapshotted.
func TestFineGranularSnapshots(t *testing.T) {
	db := openTestDB(t, ankerdb.VMSnap)
	defer db.Close()
	set(t, db, "acct", "bal", 0, 42)

	r, _ := db.Begin(ankerdb.OLAP)
	if _, err := r.Scan("acct", "bal"); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n := db.Stats().SnapshotsCreated; n != 1 {
		t.Fatalf("scanning one of two columns created %d snapshots, want 1", n)
	}
	if _, err := r.Scan("acct", "flags"); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n := db.Stats().SnapshotsCreated; n != 2 {
		t.Fatalf("after second column: %d snapshots, want 2", n)
	}
	// Re-touching a snapshotted column reuses the generation's snapshot.
	if _, err := r.Scan("acct", "bal"); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n := db.Stats().SnapshotsCreated; n != 2 {
		t.Fatalf("re-scan created a snapshot: %d, want 2", n)
	}
	mustCommit(t, r)
}

// TestConcurrentWritersAndScanners runs balanced OLTP transfers against
// concurrent OLAP aggregations: under snapshot isolation every scan
// must observe the invariant total, under every strategy. Run with
// -race in CI.
func TestConcurrentWritersAndScanners(t *testing.T) {
	for _, strat := range strategies {
		t.Run(string(strat), func(t *testing.T) {
			db := openTestDB(t, strat, ankerdb.WithSnapshotRefresh(4))
			defer db.Close()

			const (
				accounts  = 64
				initial   = 1000
				writers   = 4
				transfers = 50
				scanners  = 2
				scans     = 25
			)
			init := make([]int64, accounts)
			for i := range init {
				init[i] = initial
			}
			if err := db.Load("acct", "bal", init); err != nil {
				t.Fatalf("Load: %v", err)
			}
			const total = accounts * initial

			var wg sync.WaitGroup
			errs := make(chan error, writers+scanners)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(seed int) {
					defer wg.Done()
					rnd := uint32(seed*2654435761 + 1)
					next := func(n int) int {
						rnd = rnd*1664525 + 1013904223
						return int(rnd>>16) % n
					}
					for i := 0; i < transfers; i++ {
						for {
							from, to := next(accounts), next(accounts)
							if from == to {
								to = (to + 1) % accounts
							}
							txn, err := db.Begin(ankerdb.OLTP)
							if err != nil {
								errs <- err
								return
							}
							vf, _ := txn.Get("acct", "bal", from)
							vt, _ := txn.Get("acct", "bal", to)
							txn.Set("acct", "bal", from, vf-10)
							txn.Set("acct", "bal", to, vt+10)
							err = txn.Commit()
							if err == nil {
								break
							}
							if !errors.Is(err, ankerdb.ErrConflict) {
								errs <- fmt.Errorf("commit: %w", err)
								return
							}
							// Conflict: precision locking aborted us; retry.
						}
					}
				}(w)
			}
			for s := 0; s < scanners; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < scans; i++ {
						r, err := db.Begin(ankerdb.OLAP)
						if err != nil {
							errs <- err
							return
						}
						sum, err := r.Aggregate("acct", "bal", ankerdb.Sum)
						if err != nil {
							errs <- err
							return
						}
						if sum != total {
							errs <- fmt.Errorf("scan %d: sum %d, want %d (isolation broken)", i, sum, total)
							return
						}
						if err := r.Commit(); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			final, _ := db.Begin(ankerdb.OLAP)
			sum, err := final.Aggregate("acct", "bal", ankerdb.Sum)
			if err != nil || sum != total {
				t.Fatalf("final sum %d, %v, want %d", sum, err, total)
			}
			mustCommit(t, final)
		})
	}
}

// TestPrecisionLocking checks that a committed write into a range a
// concurrent transaction filtered on aborts that transaction at commit.
func TestPrecisionLocking(t *testing.T) {
	db := openTestDB(t, ankerdb.VMSnap)
	defer db.Close()
	set(t, db, "acct", "bal", 0, 50)

	a, _ := db.Begin(ankerdb.OLTP)
	if rows, err := a.Filter("acct", "bal", 0, 100); err != nil || len(rows) != testRows {
		t.Fatalf("Filter: %d rows, %v", len(rows), err)
	}
	a.Set("acct", "flags", 0, 1)

	set(t, db, "acct", "bal", 1, 60) // intersects a's predicate

	if err := a.Commit(); !errors.Is(err, ankerdb.ErrConflict) {
		t.Fatalf("Commit = %v, want ErrConflict", err)
	}
	if db.Stats().Conflicts != 1 {
		t.Fatalf("Conflicts = %d, want 1", db.Stats().Conflicts)
	}

	// Point-read validation: a commit overwriting a read row aborts too.
	b, _ := db.Begin(ankerdb.OLTP)
	if _, err := b.Get("acct", "bal", 0); err != nil {
		t.Fatalf("Get: %v", err)
	}
	b.Set("acct", "flags", 1, 1)
	set(t, db, "acct", "bal", 0, 70)
	if err := b.Commit(); !errors.Is(err, ankerdb.ErrConflict) {
		t.Fatalf("Commit = %v, want ErrConflict", err)
	}

	// Disjoint writes commit fine.
	c, _ := db.Begin(ankerdb.OLTP)
	c.Set("acct", "flags", 2, 1)
	mustCommit(t, c)
}

// TestReadOwnWritesAndAbort: staged writes are visible to their own
// transaction, invisible to others, and gone after Abort.
func TestReadOwnWritesAndAbort(t *testing.T) {
	db := openTestDB(t, ankerdb.Physical)
	defer db.Close()

	w, _ := db.Begin(ankerdb.OLTP)
	w.Set("acct", "bal", 5, 77)
	if v, _ := w.Get("acct", "bal", 5); v != 77 {
		t.Fatalf("own read = %d, want 77", v)
	}
	other, _ := db.Begin(ankerdb.OLTP)
	if v, _ := other.Get("acct", "bal", 5); v != 0 {
		t.Fatalf("foreign read of staged write = %d, want 0", v)
	}
	mustCommit(t, other)
	if err := w.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if err := w.Commit(); !errors.Is(err, ankerdb.ErrTxnDone) {
		t.Fatalf("Commit after Abort = %v, want ErrTxnDone", err)
	}
	check, _ := db.Begin(ankerdb.OLTP)
	if v, _ := check.Get("acct", "bal", 5); v != 0 {
		t.Fatalf("aborted write leaked: %d", v)
	}
	mustCommit(t, check)
}

// TestVarchar exercises the dictionary-backed string accessors.
func TestVarchar(t *testing.T) {
	db, err := ankerdb.Open(
		ankerdb.WithSnapshotStrategy(ankerdb.VMSnap),
		ankerdb.WithCostModel(ankerdb.ZeroCost),
	)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	schema := ankerdb.Schema{
		Table:   "users",
		Columns: []ankerdb.ColumnDef{{Name: "name", Type: ankerdb.Varchar}},
	}
	if err := db.CreateTable(schema, 16); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if err := db.CreateTable(schema, 16); !errors.Is(err, ankerdb.ErrTableExists) {
		t.Fatalf("duplicate CreateTable = %v, want ErrTableExists", err)
	}
	if err := db.LoadStrings("users", "name", []string{"ada", "grace"}); err != nil {
		t.Fatalf("LoadStrings: %v", err)
	}
	w, _ := db.Begin(ankerdb.OLTP)
	if err := w.SetString("users", "name", 2, "edsger"); err != nil {
		t.Fatalf("SetString: %v", err)
	}
	mustCommit(t, w)
	r, _ := db.Begin(ankerdb.OLAP)
	for i, want := range []string{"ada", "grace", "edsger"} {
		if got, err := r.GetString("users", "name", i); err != nil || got != want {
			t.Fatalf("GetString(%d) = %q, %v, want %q", i, got, err, want)
		}
	}
	mustCommit(t, r)
}

// TestRefreshPolicy checks WithSnapshotRefresh(n): OLAP transactions
// share a generation until n commits complete, then rotate.
func TestRefreshPolicy(t *testing.T) {
	db := openTestDB(t, ankerdb.VMSnap, ankerdb.WithSnapshotRefresh(3))
	defer db.Close()

	r1, _ := db.Begin(ankerdb.OLAP)
	ts1 := r1.SnapshotTS()
	mustCommit(t, r1)

	set(t, db, "acct", "bal", 0, 1) // 1 commit < 3: same generation
	r2, _ := db.Begin(ankerdb.OLAP)
	if r2.SnapshotTS() != ts1 {
		t.Fatalf("generation rotated after 1 commit with refresh=3")
	}
	if r2.Staleness() != 1 {
		t.Fatalf("Staleness = %d, want 1", r2.Staleness())
	}
	mustCommit(t, r2)

	set(t, db, "acct", "bal", 0, 2)
	set(t, db, "acct", "bal", 0, 3) // 3rd commit: stale
	r3, _ := db.Begin(ankerdb.OLAP)
	if r3.SnapshotTS() == ts1 {
		t.Fatalf("generation did not rotate after 3 commits")
	}
	if r3.Staleness() != 0 {
		t.Fatalf("fresh generation staleness = %d, want 0", r3.Staleness())
	}
	mustCommit(t, r3)
}

// TestErrors covers the facade's failure modes.
func TestErrors(t *testing.T) {
	db := openTestDB(t, ankerdb.VMSnap)

	r, _ := db.Begin(ankerdb.OLAP)
	if err := r.Set("acct", "bal", 0, 1); !errors.Is(err, ankerdb.ErrReadOnly) {
		t.Fatalf("OLAP Set = %v, want ErrReadOnly", err)
	}
	if _, err := r.Get("nope", "bal", 0); !errors.Is(err, ankerdb.ErrNoSuchTable) {
		t.Fatalf("Get = %v, want ErrNoSuchTable", err)
	}
	if _, err := r.Get("acct", "nope", 0); !errors.Is(err, ankerdb.ErrNoSuchColumn) {
		t.Fatalf("Get = %v, want ErrNoSuchColumn", err)
	}
	if _, err := r.Get("acct", "bal", testRows); !errors.Is(err, ankerdb.ErrRowRange) {
		t.Fatalf("Get = %v, want ErrRowRange", err)
	}
	if _, err := r.GetString("acct", "bal", 0); !errors.Is(err, ankerdb.ErrType) {
		t.Fatalf("GetString = %v, want ErrType", err)
	}
	mustCommit(t, r)

	if _, err := ankerdb.Open(ankerdb.WithSnapshotStrategy("no-such-strategy")); err == nil {
		t.Fatalf("Open with bogus strategy succeeded")
	}

	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := db.Begin(ankerdb.OLTP); !errors.Is(err, ankerdb.ErrClosed) {
		t.Fatalf("Begin after Close = %v, want ErrClosed", err)
	}
	if err := db.Close(); !errors.Is(err, ankerdb.ErrClosed) {
		t.Fatalf("double Close = %v, want ErrClosed", err)
	}
}

// TestVacuum checks that version chains shrink once no reader needs
// the old versions.
func TestVacuum(t *testing.T) {
	db := openTestDB(t, ankerdb.VMSnap)
	defer db.Close()
	for i := 0; i < 10; i++ {
		set(t, db, "acct", "bal", 0, int64(i))
	}
	if n := db.Stats().VersionNodes; n < 10 {
		t.Fatalf("VersionNodes = %d, want >= 10", n)
	}
	db.Vacuum()
	if n := db.Stats().VersionNodes; n != 0 {
		t.Fatalf("VersionNodes after Vacuum = %d, want 0", n)
	}
}
