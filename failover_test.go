package ankerdb

import (
	"errors"
	"testing"
	"time"

	"ankerdb/internal/wal"
)

// TestFailoverPromoteZeroLoss is the acceptance scenario: a primary
// streaming to two replicas is killed mid-stream; the replica with the
// highest durable commitTS is promoted and serves every transaction
// the primary acknowledged as committed — zero loss — then accepts
// writes of its own.
func TestFailoverPromoteZeroLoss(t *testing.T) {
	p := openPrimary(t, WithInitialSchema(NewSchema("kv").Int64("v").Build(), 64))

	r1 := openReplicaOf(t, p.ServeAddr(), WithDurability(t.TempDir()), WithSyncPolicy(SyncNone))
	r2 := openReplicaOf(t, p.ServeAddr(), WithDurability(t.TempDir()), WithSyncPolicy(SyncNone))

	var last uint64
	for i := 0; i < 200; i++ {
		last = commitWrite(t, p, "kv", "v", i%64, int64(i))
	}
	// Let both replicas converge before the kill so "max durable
	// commitTS" is deterministic; the zero-loss check below is against
	// acknowledged commits, which is exactly `last`.
	waitReplicaTS(t, r1, last)
	waitReplicaTS(t, r2, last)

	// Kill the primary mid-stream (replicas still connected).
	if err := p.Close(); err != nil {
		t.Fatalf("kill primary: %v", err)
	}

	// Elect the replica with the highest durable commitTS.
	winner, loser := r1, r2
	if r2.Stats().ReplicaAppliedTS > r1.Stats().ReplicaAppliedTS {
		winner, loser = r2, r1
	}
	if err := winner.Promote(last); err != nil {
		t.Fatalf("promote at %d: %v", last, err)
	}

	st := winner.Stats()
	if !st.Promoted || st.Replica {
		t.Errorf("post-promote stats: promoted=%v replica=%v", st.Promoted, st.Replica)
	}

	// Zero committed loss: every acknowledged write is readable.
	tx, err := winner.Begin(OLAP)
	if err != nil {
		t.Fatal(err)
	}
	if tx.SnapshotTS() < last {
		t.Fatalf("promoted snapshot %d below last acknowledged commit %d", tx.SnapshotTS(), last)
	}
	for i := 136; i < 200; i++ { // final write to each of the 64 rows
		v, err := tx.Get("kv", "v", i%64)
		if err != nil {
			t.Fatalf("row %d lost after failover: %v", i%64, err)
		}
		if v != int64(i) {
			t.Fatalf("row %d = %d after failover, want %d", i%64, v, i)
		}
	}
	tx.Abort()

	// The promoted node is writable again.
	commitWrite(t, winner, "kv", "v", 0, 9999)
	if got := olapGet(t, winner, "kv", "v", 0); got != 9999 {
		t.Errorf("post-failover write read back %d, want 9999", got)
	}

	// The losing replica stays a read-only replica.
	if _, err := loser.Begin(OLTP); !errors.Is(err, ErrReplicaRead) {
		t.Errorf("loser accepted a write: %v", err)
	}
}

// TestFailoverStaleRefusal: a replica whose applied watermark is
// behind the required commitTS refuses promotion with
// ErrStalePromotion and keeps replicating afterwards.
func TestFailoverStaleRefusal(t *testing.T) {
	p := openPrimary(t, WithInitialSchema(NewSchema("kv").Int64("v").Build(), 8))
	r := openReplicaOf(t, p.ServeAddr())

	ts := commitWrite(t, p, "kv", "v", 0, 1)
	waitReplicaTS(t, r, ts)

	// Demand a future commitTS the replica cannot have applied.
	if err := r.Promote(ts + 1000); !errors.Is(err, ErrStalePromotion) {
		t.Fatalf("stale promote = %v, want ErrStalePromotion", err)
	}

	// Refusal must not disturb replication: new primary writes still land.
	st := r.Stats()
	if !st.Replica || st.Promoted {
		t.Fatalf("refused replica changed role: replica=%v promoted=%v", st.Replica, st.Promoted)
	}
	ts = commitWrite(t, p, "kv", "v", 1, 2)
	waitReplicaTS(t, r, ts)
	if got := olapGet(t, r, "kv", "v", 1); got != 2 {
		t.Errorf("post-refusal stream broken: v[1] = %d, want 2", got)
	}

	// With the watermark actually reached, the same promotion succeeds.
	if err := r.Promote(ts); err != nil {
		t.Fatalf("promote at reached watermark: %v", err)
	}
	if _, err := r.Begin(OLTP); err != nil {
		t.Errorf("promoted replica refuses writes: %v", err)
	}
}

// TestFailoverPromotedSurvivesRestart: a promoted durable replica
// restarted from its own WAL recovers the full replicated-plus-local
// history as an ordinary primary.
func TestFailoverPromotedSurvivesRestart(t *testing.T) {
	p := openPrimary(t, WithInitialSchema(NewSchema("kv").Int64("v").Build(), 8))
	dir := t.TempDir()
	r, err := Open(WithCostModel(ZeroCost), WithDurability(dir), WithSyncPolicy(SyncNone), WithReplicaOf(p.ServeAddr()))
	if err != nil {
		t.Fatal(err)
	}

	ts := commitWrite(t, p, "kv", "v", 3, 30)
	waitReplicaTS(t, r, ts)
	_ = p.Close()

	if err := r.Promote(ts); err != nil {
		t.Fatalf("promote: %v", err)
	}
	commitWrite(t, r, "kv", "v", 4, 40) // local write after promotion
	if err := r.Close(); err != nil {
		t.Fatalf("close promoted: %v", err)
	}

	// Reopen standalone (no -replica-of): recovery replays the WAL the
	// replica accumulated while streaming plus its own post-promotion
	// commits.
	nr, err := Open(WithCostModel(ZeroCost), WithDurability(dir), WithSyncPolicy(SyncNone))
	if err != nil {
		t.Fatalf("reopen promoted: %v", err)
	}
	defer nr.Close()
	if got := olapGet(t, nr, "kv", "v", 3); got != 30 {
		t.Errorf("replicated write lost across restart: v[3] = %d, want 30", got)
	}
	if got := olapGet(t, nr, "kv", "v", 4); got != 40 {
		t.Errorf("post-promotion write lost across restart: v[4] = %d, want 40", got)
	}
	if st := nr.Stats(); st.Replica {
		t.Errorf("restarted standalone still thinks it is a replica")
	}
	commitWrite(t, nr, "kv", "v", 5, 50)
}

// TestPromoteSeedsAboveAppliedTableDDL: a DropTable/Truncate marker
// streams immediately (schema records are not watermark-gated), so a
// replica can have applied one whose timestamp is ahead of both its
// applied-commit high-water and its completed watermark. Promote must
// seed the oracle above the marker anyway: a promoted primary issuing
// commit timestamps at or below an applied truncate barrier would
// insert rows the barrier hides from nothing in memory but recovery's
// truncate replay kills on restart.
func TestPromoteSeedsAboveAppliedTableDDL(t *testing.T) {
	p := openPrimary(t, WithInitialSchema(NewSchema("kv").Int64("v").Build(), 8))
	r := openReplicaOf(t, p.ServeAddr())

	ts := commitWrite(t, p, "kv", "v", 0, 1)
	waitReplicaTS(t, r, ts)
	_ = p.Close()
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().ReplicaConnected {
		if time.Now().After(deadline) {
			t.Fatal("replica never noticed the dead primary")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// With the stream dead the connector sits in its redial loop and
	// never touches the apply path, so the marker frame the primary
	// would have streamed can be injected directly: a truncate stamped
	// beyond everything the replica has applied or completed — exactly
	// the state a marker racing its covering heartbeat leaves behind.
	markerTS := r.oracle.Completed() + 3
	payload := (wal.TableDDLRecord{Name: "kv", Op: wal.TableDDLTruncate, TS: markerTS}).Encode()
	if err := r.rep.applySchema(schemaFrame(r.rep.schemaSeq, payload)); err != nil {
		t.Fatalf("apply injected truncate marker: %v", err)
	}

	if err := r.Promote(0); err != nil {
		t.Fatalf("promote: %v", err)
	}
	tx, err := r.Begin(OLTP)
	if err != nil {
		t.Fatal(err)
	}
	row, err := tx.Insert("kv", map[string]any{"v": int64(7)})
	if err != nil {
		t.Fatalf("post-promotion insert: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("post-promotion commit: %v", err)
	}
	if newTS := r.oracle.Completed(); newTS <= markerTS {
		t.Fatalf("post-promotion commit TS %d at or below applied truncate barrier %d", newTS, markerTS)
	}
	if got := olapGet(t, r, "kv", "v", row); got != 7 {
		t.Fatalf("post-promotion insert reads %d, want 7", got)
	}
}

// TestFailoverReplicaOutlivesPrimaryDisconnect: when the primary dies
// and nobody promotes, the replica keeps serving reads at its applied
// watermark and reports the disconnect in Stats.
func TestFailoverReplicaOutlivesPrimaryDisconnect(t *testing.T) {
	p := openPrimary(t, WithInitialSchema(NewSchema("kv").Int64("v").Build(), 8))
	r := openReplicaOf(t, p.ServeAddr())

	ts := commitWrite(t, p, "kv", "v", 0, 123)
	waitReplicaTS(t, r, ts)
	_ = p.Close()

	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().ReplicaConnected {
		if time.Now().After(deadline) {
			t.Fatal("replica never noticed the dead primary")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := olapGet(t, r, "kv", "v", 0); got != 123 {
		t.Errorf("read after disconnect = %d, want 123", got)
	}
}
