package ankerdb

import (
	"errors"
	"fmt"

	"ankerdb/internal/wal"
)

// Errors returned by the engine facade.
var (
	// ErrClosed is returned by operations on a closed DB.
	ErrClosed = errors.New("ankerdb: database is closed")

	// ErrTxnDone is returned by operations on a committed or aborted
	// transaction.
	ErrTxnDone = errors.New("ankerdb: transaction already finished")

	// ErrReadOnly is returned when an OLAP transaction attempts a write.
	ErrReadOnly = errors.New("ankerdb: OLAP transactions are read-only")

	// ErrConflict is returned by Commit when precision-locking
	// validation found that a concurrent commit invalidated one of the
	// transaction's reads; the transaction has been aborted.
	ErrConflict = errors.New("ankerdb: serialization conflict")

	// ErrNoSuchTable is returned for unknown table names.
	ErrNoSuchTable = errors.New("ankerdb: no such table")

	// ErrNoSuchColumn is returned for unknown column names.
	ErrNoSuchColumn = errors.New("ankerdb: no such column")

	// ErrRowRange is returned for row indexes outside a table's mapped
	// capacity. The returned error names the table, column and
	// offending row index; match it with errors.Is.
	ErrRowRange = errors.New("ankerdb: row index out of range")

	// ErrRowNotVisible is returned for rows that exist physically but
	// are not visible at the transaction's read timestamp: never
	// inserted, born after the snapshot, already deleted, or staged for
	// deletion by the transaction itself. It also matches ErrRowRange
	// under errors.Is, because "no such row at this snapshot" subsumes
	// the fixed-capacity failure older callers tested for.
	ErrRowNotVisible = errors.New("ankerdb: row not visible at read timestamp")

	// ErrTableExists is returned by CreateTable for duplicate names.
	ErrTableExists = errors.New("ankerdb: table already exists")

	// ErrType is returned when a string accessor is used on a
	// non-VARCHAR column.
	ErrType = errors.New("ankerdb: column type mismatch")

	// ErrNoDurability is returned by Checkpoint when the database was
	// opened without WithDurability.
	ErrNoDurability = errors.New("ankerdb: durability not enabled")

	// ErrNotOLAP is returned by Txn.Query on a non-OLAP transaction:
	// queries execute against a pinned snapshot generation, which only
	// OLAP transactions hold.
	ErrNotOLAP = errors.New("ankerdb: queries require an OLAP transaction")

	// ErrIndexExists is returned by CreateIndex when the column already
	// has a secondary index.
	ErrIndexExists = errors.New("ankerdb: index already exists")

	// ErrNoIndex is returned by DropIndex when the column has no
	// secondary index.
	ErrNoIndex = errors.New("ankerdb: no index on column")

	// ErrIndexKind is returned by CreateIndex for an index kind that is
	// neither Hash nor Ordered.
	ErrIndexKind = errors.New("ankerdb: invalid index kind")

	// ErrReplicaRead is returned by every local mutation (OLTP Begin,
	// DDL, bulk loads) on a database opened WithReplicaOf: a replica's
	// state is owned by the primary's record stream until Promote.
	ErrReplicaRead = errors.New("ankerdb: replica is read-only")

	// ErrNotReplica is returned by Promote on a database that was not
	// opened WithReplicaOf (or was already promoted).
	ErrNotReplica = errors.New("ankerdb: not a replica")

	// ErrStalePromotion is returned by Promote when the replica's
	// applied watermark is below the caller's required timestamp:
	// promoting it would lose commits some other replica (or the failed
	// primary) had acknowledged. Replication keeps running; retry after
	// the replica catches up, or promote the replica that is ahead.
	ErrStalePromotion = errors.New("ankerdb: replica too stale to promote")

	// ErrTooManySessions is returned to a dialing client when the
	// serving endpoint is at its WithServeMaxSessions admission cap.
	ErrTooManySessions = errors.New("ankerdb: session limit reached")
)

// Recovery corruption sentinels, re-exported from internal/wal so
// callers can classify Open failures with errors.Is without importing
// internal packages. The concrete error wrapping each sentinel names
// the offending file and byte offset. Note what is NOT corruption: a
// torn tail — a partially written final frame — is the expected
// residue of a crash, silently cut off and counted in
// RecoveryReport.TailBytes.
var (
	// ErrCorruptWAL matches recovery failures caused by an undecodable
	// write-ahead-log or schema-log record: an unsupported segment
	// header, or a CRC-valid frame whose payload does not decode.
	ErrCorruptWAL = wal.ErrCorruptWAL

	// ErrCorruptCheckpoint matches recovery failures caused by a
	// damaged checkpoint file: bad magic, a missing trailer, a body
	// that does not parse, or a checksum mismatch.
	ErrCorruptCheckpoint = wal.ErrCorruptCheckpoint
)

// errRowRange builds the named ErrRowRange error for (table, column,
// row) against the table's current capacity; col may be empty for
// whole-row operations (Delete).
func errRowRange(tab, col string, row, capacity int) error {
	at := tab
	if col != "" {
		at = tab + "." + col
	}
	return fmt.Errorf("%w: row %d of %s (capacity %d)", ErrRowRange, row, at, capacity)
}

// notVisibleError names a row that exists physically but is not part
// of the visible row set at the transaction's read timestamp. It
// matches both ErrRowNotVisible and ErrRowRange under errors.Is.
type notVisibleError struct {
	tab, col string
	row      int
	ts       uint64
}

func (e *notVisibleError) Error() string {
	at := e.tab
	if e.col != "" {
		at = e.tab + "." + e.col
	}
	return fmt.Sprintf("ankerdb: row %d of %s not visible at read timestamp %d", e.row, at, e.ts)
}

func (e *notVisibleError) Is(target error) bool {
	return target == ErrRowNotVisible || target == ErrRowRange
}
