package ankerdb

import "errors"

// Errors returned by the engine facade.
var (
	// ErrClosed is returned by operations on a closed DB.
	ErrClosed = errors.New("ankerdb: database is closed")

	// ErrTxnDone is returned by operations on a committed or aborted
	// transaction.
	ErrTxnDone = errors.New("ankerdb: transaction already finished")

	// ErrReadOnly is returned when an OLAP transaction attempts a write.
	ErrReadOnly = errors.New("ankerdb: OLAP transactions are read-only")

	// ErrConflict is returned by Commit when precision-locking
	// validation found that a concurrent commit invalidated one of the
	// transaction's reads; the transaction has been aborted.
	ErrConflict = errors.New("ankerdb: serialization conflict")

	// ErrNoSuchTable is returned for unknown table names.
	ErrNoSuchTable = errors.New("ankerdb: no such table")

	// ErrNoSuchColumn is returned for unknown column names.
	ErrNoSuchColumn = errors.New("ankerdb: no such column")

	// ErrRowRange is returned for row indexes outside a table's fixed
	// capacity.
	ErrRowRange = errors.New("ankerdb: row index out of range")

	// ErrTableExists is returned by CreateTable for duplicate names.
	ErrTableExists = errors.New("ankerdb: table already exists")

	// ErrType is returned when a string accessor is used on a
	// non-VARCHAR column.
	ErrType = errors.New("ankerdb: column type mismatch")

	// ErrNoDurability is returned by Checkpoint when the database was
	// opened without WithDurability.
	ErrNoDurability = errors.New("ankerdb: durability not enabled")
)
